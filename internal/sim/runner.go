package sim

import (
	"errors"
	"fmt"
	"math"

	"diffusionlb/internal/core"
	"diffusionlb/internal/envdyn"
	"diffusionlb/internal/hetero"
	"diffusionlb/internal/invariants"
	"diffusionlb/internal/metrics"
	"diffusionlb/internal/scenario"
	"diffusionlb/internal/spectral"
	"diffusionlb/internal/telemetry"
	"diffusionlb/internal/workload"
)

// Metric samples one scalar per recorded round from a running process.
type Metric interface {
	// Name is the column name in the recorded series.
	Name() string
	// Compute samples the metric from the process.
	Compute(p core.Process) float64
}

// metricFunc adapts a closure into a Metric.
type metricFunc struct {
	name string
	fn   func(core.Process) float64
}

func (m metricFunc) Name() string                   { return m.name }
func (m metricFunc) Compute(p core.Process) float64 { return m.fn(p) }

// MetricFunc builds a Metric from a name and a closure.
func MetricFunc(name string, fn func(core.Process) float64) Metric {
	return metricFunc{name: name, fn: fn}
}

// intsOrFloats applies the right generic metric to the process load view.
func intsOrFloats(p core.Process, fi func([]int64) float64, ff func([]float64) float64) float64 {
	lv := p.Loads()
	if lv.Int != nil {
		return fi(lv.Int)
	}
	return ff(lv.Float)
}

// MaxMinusAvg is φ_global = max load − average load (metric 2, Section VI).
func MaxMinusAvg() Metric {
	return MetricFunc("max_minus_avg", func(p core.Process) float64 {
		return intsOrFloats(p, metrics.MaxMinusAvg[int64], metrics.MaxMinusAvg[float64])
	})
}

// MaxLocalDiff is φ_local = max load difference across an edge (metric 1).
func MaxLocalDiff() Metric {
	return MetricFunc("max_local_diff", func(p core.Process) float64 {
		g := p.Operator().Graph()
		lv := p.Loads()
		if lv.Int != nil {
			return metrics.MaxLocalDiff(g, lv.Int)
		}
		return metrics.MaxLocalDiff(g, lv.Float)
	})
}

// PotentialPerN is φ_t/n, the 2-norm potential of [19] divided by n as the
// paper plots it (metric 3).
func PotentialPerN() Metric {
	return MetricFunc("potential_per_n", func(p core.Process) float64 {
		sp := p.Operator().Speeds()
		n := float64(p.Operator().Graph().NumNodes())
		return intsOrFloats(p,
			func(x []int64) float64 { return metrics.Potential(x, sp) / n },
			func(x []float64) float64 { return metrics.Potential(x, sp) / n })
	})
}

// Discrepancy is max − min load.
func Discrepancy() Metric {
	return MetricFunc("discrepancy", func(p core.Process) float64 {
		return intsOrFloats(p, metrics.Discrepancy[int64], metrics.Discrepancy[float64])
	})
}

// MinLoad is the minimum end-of-round load (negative-load diagnostics).
func MinLoad() Metric {
	return MetricFunc("min_load", func(p core.Process) float64 {
		return intsOrFloats(p, metrics.MinLoad[int64], metrics.MinLoad[float64])
	})
}

// MinTransient is the running minimum transient load x̆ (Section V). Before
// the first round the process reports the +Inf sentinel; mapping it to 0
// would make the round-0 row indistinguishable from a true minimum
// transient of zero in negative-load plots, so the metric reports the
// current minimum load instead — the value the running minimum starts from.
func MinTransient() Metric {
	return MetricFunc("min_transient", func(p core.Process) float64 {
		v := p.MinTransient()
		if math.IsInf(v, 1) {
			return intsOrFloats(p, metrics.MinLoad[int64], metrics.MinLoad[float64])
		}
		return v
	})
}

// TotalLoad is Σ x_i, for conservation plots (Figure 6, right).
func TotalLoad() Metric {
	return MetricFunc("total_load", func(p core.Process) float64 {
		return intsOrFloats(p, metrics.Total[int64], metrics.Total[float64])
	})
}

// HeteroMaxMinusTarget is the speed-proportional φ_global.
func HeteroMaxMinusTarget() Metric {
	return MetricFunc("max_minus_target", func(p core.Process) float64 {
		sp := p.Operator().Speeds()
		return intsOrFloats(p,
			func(x []int64) float64 { return metrics.HeteroMaxMinusTarget(x, sp) },
			func(x []float64) float64 { return metrics.HeteroMaxMinusTarget(x, sp) })
	})
}

// DeviationFrom records ‖x_P − x_ref‖_∞ against a reference process that
// the caller steps in lockstep (e.g. the idealized continuous run).
func DeviationFrom(ref core.Process, name string) Metric {
	return MetricFunc(name, func(p core.Process) float64 {
		a, b := p.Loads(), ref.Loads()
		var dev float64
		var err error
		switch {
		case a.Int != nil && b.Float != nil:
			dev, err = metrics.DeviationInf(a.Int, b.Float)
		case a.Int != nil && b.Int != nil:
			dev, err = metrics.DeviationInf(a.Int, b.Int)
		case a.Float != nil && b.Float != nil:
			dev, err = metrics.DeviationInf(a.Float, b.Float)
		default:
			dev, err = metrics.DeviationInf(a.Float, b.Int)
		}
		if err != nil {
			return math.NaN()
		}
		return dev
	})
}

// PeakDiscrepancy records the running maximum discrepancy over the recorded
// rounds — the headline "how bad did it get" number for dynamic workloads,
// where the plain discrepancy dips and spikes with every burst. The running
// maximum is taken over sampled rounds only, so with Every > 1 a spike
// between two recording points can be missed; record every round when the
// exact peak matters.
//
// Unlike the other Metric constructors this one carries state (the running
// peak), so a value is good for a single run: build a fresh PeakDiscrepancy
// per Runner, never share one metrics slice across runs.
func PeakDiscrepancy() Metric {
	peak := math.Inf(-1)
	return MetricFunc("peak_discrepancy", func(p core.Process) float64 {
		d := intsOrFloats(p, metrics.Discrepancy[int64], metrics.Discrepancy[float64])
		if d > peak {
			peak = d
		}
		return peak
	})
}

// InjectedLoad samples the cumulative net externally injected load
// (arrivals − departures) of processes exposing Injected(); it reports 0
// for processes without injection accounting.
func InjectedLoad() Metric {
	return MetricFunc("injected_load", func(p core.Process) float64 {
		if ip, ok := p.(interface{ Injected() (int64, int64) }); ok {
			added, removed := ip.Injected()
			return float64(added - removed)
		}
		return 0
	})
}

// RoundsToRecover scans a recorded series for the first round at or after
// fromRound where the named column is at or below threshold, and returns
// how many rounds past fromRound that took (0 if already recovered at
// fromRound's row). It returns -1 when the series never recovers — the
// "rounds-to-rebalance after a burst" recovery metric. The resolution is
// the recording cadence of the series.
func RoundsToRecover(s *Series, col string, fromRound int, threshold float64) (int, error) {
	vals, err := s.Column(col)
	if err != nil {
		return -1, err
	}
	for i, v := range vals {
		if s.Round(i) >= fromRound && v <= threshold {
			return s.Round(i) - fromRound, nil
		}
	}
	return -1, nil
}

// IdealLoadDrift records max_i |x_i − x̄_i| against the proportional
// targets of the operator's *current* speeds — the re-tracking signal for
// time-varying environments: a speed event moves x̄, so the drift jumps the
// round the operator is reweighted without a single token having moved, and
// the recorded column shows how fast the scheme chases the new target.
func IdealLoadDrift() Metric {
	return MetricFunc("ideal_drift", func(p core.Process) float64 {
		sp := p.Operator().Speeds()
		return intsOrFloats(p,
			func(x []int64) float64 { return metrics.HeteroMaxAbsDeviation(x, sp) },
			func(x []float64) float64 { return metrics.HeteroMaxAbsDeviation(x, sp) })
	})
}

// SpeedSum records Σ s_i of the operator's current speeds, so recordings
// show the environment trajectory alongside the load metrics (it only moves
// when the environment does).
func SpeedSum() Metric {
	return MetricFunc("speed_sum", func(p core.Process) float64 {
		return p.Operator().Speeds().Sum()
	})
}

// EnvironmentMetrics is the pair every dynamic-environment run records on
// top of its base metrics: the ideal-load drift and the total speed. Both
// the sweep engine and the lbsim free-form mode append exactly this set
// when an environment is attached.
func EnvironmentMetrics() []Metric {
	return []Metric{IdealLoadDrift(), SpeedSum()}
}

// ScenarioMetrics is the set every coupled-scenario run records on top of
// its base metrics: the dynamic-workload recovery trio plus the
// environment drift pair — a scenario moves both the loads and the target.
// Like DynamicMetrics, the returned slice is good for one run.
func ScenarioMetrics() []Metric {
	return append(DynamicMetrics(), EnvironmentMetrics()...)
}

// RoundsToRetrack scans a recorded series for how many rounds past a speed
// event the named drift column needed to fall back to or below threshold —
// the environment counterpart of RoundsToRecover (it is the same scan; the
// alias keeps call sites self-describing). -1 means it never re-tracked.
func RoundsToRetrack(s *Series, col string, eventRound int, threshold float64) (int, error) {
	return RoundsToRecover(s, col, eventRound, threshold)
}

// TokensMoved samples the cumulative token-hop counter of processes that
// expose Traffic() (the discrete engines and the baselines); it reports 0
// for processes without traffic accounting.
func TokensMoved() Metric {
	return MetricFunc("token_hops", func(p core.Process) float64 {
		if tp, ok := p.(interface{ Traffic() (int64, int64) }); ok {
			tok, _ := tp.Traffic()
			return float64(tok)
		}
		return 0
	})
}

// DefaultMetrics is the trio the paper plots in Figure 1: max−avg, max
// local difference, potential/n.
func DefaultMetrics() []Metric {
	return []Metric{MaxMinusAvg(), MaxLocalDiff(), PotentialPerN()}
}

// DynamicMetrics is the recovery trio every dynamic-workload run records on
// top of its base metrics: the instantaneous discrepancy, its running peak,
// and the total load (which only the workload changes). Both the sweep
// engine and the lbsim free-form mode append exactly this set when a
// workload is attached. Like PeakDiscrepancy, the returned slice is good
// for one run.
func DynamicMetrics() []Metric {
	return []Metric{Discrepancy(), PeakDiscrepancy(), TotalLoad()}
}

// Runner drives a process and records metrics.
type Runner struct {
	// Proc is the process to drive. Required.
	Proc core.Process
	// Metrics are the columns to record; DefaultMetrics() if nil.
	Metrics []Metric
	// Every is the recording cadence in rounds (default 1).
	Every int
	// Policy optionally switches the scheme to FOS mid-run (one-way
	// hybrid). Internally it runs as core.OneShot(Policy); set Adaptive
	// instead for bidirectional (re-arming) controllers. Setting both is
	// an error.
	Policy core.SwitchPolicy
	// Adaptive optionally drives the scheme kind every round (hysteresis
	// re-arming, custom controllers). It is evaluated after workload
	// injection, so the controller sees post-burst loads the same round
	// they land. Stateful policies are tied to one trajectory: build a
	// fresh one per run (e.g. via core.PolicyFromSpec) or call
	// core.ResetPolicy between runs.
	Adaptive core.AdaptivePolicy
	// Lockstep processes are stepped once per round before sampling; use
	// for reference processes consumed by DeviationFrom.
	Lockstep []core.Process
	// Workload, when set, mutates the load vector after every round
	// (dynamic arrivals, hotspot bursts, churn). Proc and every Lockstep
	// process must implement core.Injector — the same deltas go to all of
	// them, so reference trajectories see the same external load.
	Workload workload.Mutator
	// Environment, when set, drives time-varying processor speeds
	// (throttle/boost events, drain/restore ramps, jitter): each round —
	// after the step, before workload injection — the dynamics are
	// evaluated against the operator's starting speeds and, when the
	// effective vector changes, the operator is reweighted in place and
	// every process retargeted. Proc and every Lockstep process must
	// implement core.Retargeter and share one *spectral.Operator, so
	// reference trajectories chase the same moving target.
	Environment envdyn.Dynamics
	// Scenario, when set, drives one coupled timeline of speed *and* load
	// events (migration-on-drain, correlated throttle+burst, cascades):
	// each round the speed half is applied exactly like an Environment
	// (reweight + retarget) and the derived load half is injected
	// immediately after, before any Workload — one atomic unit, mirrored
	// into every Lockstep process, so reference trajectories and
	// checkpoint/restore cuts stay bit-identical. Proc and every Lockstep
	// process must implement both core.Retargeter and core.Injector (and
	// share the operator). Setting both Scenario and Environment is an
	// error: a scenario owns the speed timeline.
	Scenario *scenario.Scenario
	// BetaReopt, when set, re-optimizes the SOS β after large speed events:
	// whenever the operator's total speed has drifted beyond the threshold
	// since the last re-optimization, the (Reweight-invalidated) power
	// iteration is re-run and the new β_opt installed on Proc and every
	// Lockstep process, which must implement core.BetaSetter. It composes
	// with Environment or Scenario (without either it never fires).
	BetaReopt *BetaReopt
	// OnRound, when set, is called after each round (after any lockstep
	// steps and workload injection), e.g. to dump visualization frames.
	OnRound func(round int, p core.Process)
	// Telemetry, when set, receives per-round gauges (discrepancy,
	// potential, speed sum, stale-β rounds), a round-latency histogram,
	// and lifecycle trace events. Recording is strictly write-only: the
	// run's trajectory is bit-identical with Telemetry set or nil (pinned
	// by TestTelemetryDifferentialDeterminism).
	Telemetry *telemetry.RunProbe
}

// reweightOp applies a speed event to the shared operator, sharding the
// O(n) diagonal revalidation over the process's own step layout when the
// process exposes one (core.Sharded) — at 2²⁰ nodes the validation scan is
// the entire cost of a speed event, since α is speed-independent and the
// engines read it through the operator view with no per-arc copying. The
// result is identical either way; only the scan parallelizes.
func reweightOp(p core.Process, op *spectral.Operator, sp *hetero.Speeds) error {
	if sh, ok := p.(core.Sharded); ok {
		return op.ReweightPar(sp, sh.ShardLayout(), sh.StepWorkers())
	}
	return op.Reweight(sp)
}

// workloadLoads adapts a process's load vector to the workload.Loads view.
func workloadLoads(lv core.LoadView) workload.Loads {
	if lv.Int != nil {
		return workload.IntLoads(lv.Int)
	}
	return workload.SliceLoads(lv.Float)
}

// SpeedEvent records one effective speed change of a dynamic-environment
// run.
type SpeedEvent struct {
	// Round is the completed round after which the new speeds applied.
	Round int `json:"round"`
	// Nodes is the number of nodes whose speed changed.
	Nodes int `json:"nodes"`
	// Sum is the new total speed Σ s_i.
	Sum float64 `json:"sum"`
}

// String renders the event compactly, e.g. "150:8 nodes,sum=96".
func (e SpeedEvent) String() string {
	return fmt.Sprintf("%d:%d nodes,sum=%g", e.Round, e.Nodes, e.Sum)
}

// ScenarioEvent records one fired round of a coupled scenario: the speed
// half and the load half of the same timeline, applied as one unit.
type ScenarioEvent struct {
	// Round is the completed round the event applied after.
	Round int `json:"round"`
	// Nodes is the number of nodes whose effective speed changed (0 for a
	// load-only round, e.g. a pure burst).
	Nodes int `json:"nodes"`
	// Moved is the total positive load the event relocated or injected this
	// round (migration counts each moved token once).
	Moved int64 `json:"moved"`
	// Sum is the total speed Σ s_i after the event.
	Sum float64 `json:"sum"`
}

// String renders the event compactly, e.g. "40:8 nodes,1200 moved,sum=96".
func (e ScenarioEvent) String() string {
	return fmt.Sprintf("%d:%d nodes,%d moved,sum=%g", e.Round, e.Nodes, e.Moved, e.Sum)
}

// BetaReopt configures the β re-optimization policy (Runner.BetaReopt).
type BetaReopt struct {
	// Threshold is the relative total-speed drift |Σs − Σs_last|/Σs_last
	// that triggers a re-optimization (default 0.05).
	Threshold float64
	// Cooldown is the minimum number of rounds between re-optimizations
	// (0 = none). While a qualifying drift waits out the cooldown, the run
	// is accumulating Result.StaleBetaRounds.
	Cooldown int
	// Power tunes the power iteration (zero value = spectral defaults).
	Power spectral.PowerOptions
}

// BetaReoptState drives the re-optimization trigger round by round: the
// drift baseline (total speed at the last re-opt) and the cooldown clock.
// The Runner owns one internally; manual drivers — in particular
// checkpoint resumes, which re-drive dynamics by hand exactly like the
// envdyn.Applier recipe — build their own and seed BaseSum/LastReopt from
// the original run's Result.BetaEvents, so the resumed trigger fires
// bit-identically with the uninterrupted run (Checkpoint.Beta carries the
// β value itself).
type BetaReoptState struct {
	cfg BetaReopt
	// BaseSum is the drift baseline: the total speed at the last re-opt
	// (or at the start of the run).
	BaseSum float64
	// LastReopt is the round of the last re-opt (-1 = none yet).
	LastReopt int
	// Stale counts the rounds a qualifying drift waited out the cooldown —
	// the rounds-spent-on-stale-β metric.
	Stale   int
	setters []core.BetaSetter
}

// NewBetaReoptState builds the trigger over a starting baseline and the
// processes whose β it re-optimizes.
func NewBetaReoptState(cfg BetaReopt, baseSum float64, setters ...core.BetaSetter) *BetaReoptState {
	return &BetaReoptState{cfg: cfg, BaseSum: baseSum, LastReopt: -1, setters: setters}
}

// Step evaluates the trigger after round's speed changes have been applied
// to op, installing the new β_opt on every setter when it fires. It
// returns the applied event, or nil.
func (s *BetaReoptState) Step(round int, op *spectral.Operator) (*BetaEvent, error) {
	sum := op.Speeds().Sum()
	if math.Abs(sum-s.BaseSum) <= s.cfg.threshold()*s.BaseSum {
		return nil, nil
	}
	if s.LastReopt >= 0 && round-s.LastReopt < s.cfg.Cooldown {
		s.Stale++
		return nil, nil
	}
	lam, _, err := op.SecondEigenvalue(s.cfg.Power)
	if err != nil {
		return nil, fmt.Errorf("sim: beta re-opt at round %d: %w", round, err)
	}
	beta, err := spectral.BetaOpt(lam)
	if err != nil {
		return nil, fmt.Errorf("sim: beta re-opt at round %d: %w", round, err)
	}
	for _, bs := range s.setters {
		if err := bs.SetBeta(beta); err != nil {
			return nil, fmt.Errorf("sim: beta re-opt at round %d: %w", round, err)
		}
	}
	s.BaseSum, s.LastReopt = sum, round
	return &BetaEvent{Round: round, Lambda: lam, Beta: beta, Sum: sum}, nil
}

// threshold resolves the default.
func (b *BetaReopt) threshold() float64 {
	if b.Threshold <= 0 {
		return 0.05
	}
	return b.Threshold
}

// BetaEvent records one β re-optimization.
type BetaEvent struct {
	// Round is the completed round after which the new β applied.
	Round int `json:"round"`
	// Lambda is the re-computed second eigenvalue of the current operator.
	Lambda float64 `json:"lambda"`
	// Beta is the installed β_opt.
	Beta float64 `json:"beta"`
	// Sum is the total speed the event re-baselined the drift trigger to —
	// what a checkpoint resume seeds BetaReoptState.BaseSum with.
	Sum float64 `json:"sum"`
}

// String renders the event compactly, e.g. "40:lambda=0.986,beta=1.72".
func (e BetaEvent) String() string {
	return fmt.Sprintf("%d:lambda=%.6g,beta=%.6g", e.Round, e.Lambda, e.Beta)
}

// Result is the outcome of a run.
type Result struct {
	// Series holds the recorded metric table.
	Series *Series
	// SwitchRound is the round of the first scheme switch (-1 if none) —
	// the legacy one-shot view of Switches.
	SwitchRound int
	// Switches is the full scheme-switch history; adaptive policies may
	// switch any number of times. Nil when no policy fired.
	Switches []core.SwitchEvent
	// SpeedEvents is the history of effective speed changes applied by the
	// Environment (nil when none fired). Jittery environments produce one
	// entry per changing round.
	SpeedEvents []SpeedEvent
	// ScenarioEvents is the history of coupled scenario rounds (nil when no
	// Scenario is set or none fired): one entry per round in which the
	// timeline changed speeds, moved load, or both.
	ScenarioEvents []ScenarioEvent
	// BetaEvents is the history of β re-optimizations (nil when BetaReopt
	// is unset or never fired).
	BetaEvents []BetaEvent
	// StaleBetaRounds counts the rounds executed with a qualifying speed
	// drift while the BetaReopt cooldown delayed the re-optimization — the
	// rounds-spent-on-stale-β metric (always 0 without a cooldown).
	StaleBetaRounds int
	// Rounds is the total number of rounds executed.
	Rounds int
}

// Run executes the configured number of rounds and returns the recording.
func (r *Runner) Run(rounds int) (*Result, error) {
	if r.Proc == nil {
		return nil, errors.New("sim: Runner.Proc is nil")
	}
	if rounds < 0 {
		return nil, fmt.Errorf("sim: negative round count %d", rounds)
	}
	ms := r.Metrics
	if ms == nil {
		ms = DefaultMetrics()
	}
	every := r.Every
	if every <= 0 {
		every = 1
	}
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.Name()
	}
	series := NewSeries(names...)
	res := &Result{Series: series, SwitchRound: -1}

	policy := r.Adaptive
	if r.Policy != nil {
		if policy != nil {
			return nil, errors.New("sim: set either Runner.Policy or Runner.Adaptive, not both")
		}
		policy = core.OneShot(r.Policy)
	}

	// The speed timeline comes from either Environment or Scenario (whose
	// speed half is an envdyn.Dynamics); both drive the same reweight +
	// retarget machinery.
	envDyn := r.Environment
	if r.Scenario != nil {
		if envDyn != nil {
			return nil, errors.New("sim: set either Runner.Environment or Runner.Scenario, not both (a scenario owns the speed timeline)")
		}
		envDyn = r.Scenario.Dynamics()
	}
	var applier *envdyn.Applier
	var retargeters []core.Retargeter
	if envDyn != nil {
		op := r.Proc.Operator()
		rt, ok := r.Proc.(core.Retargeter)
		if !ok {
			return nil, fmt.Errorf("sim: dynamics %q set but process %T does not implement core.Retargeter",
				envDyn.Name(), r.Proc)
		}
		retargeters = append(retargeters, rt)
		for _, ref := range r.Lockstep {
			rrt, ok := ref.(core.Retargeter)
			if !ok {
				return nil, fmt.Errorf("sim: dynamics %q set but lockstep process %T does not implement core.Retargeter",
					envDyn.Name(), ref)
			}
			// A lockstep reference on a different operator instance would
			// keep balancing toward the stale targets and corrupt every
			// deviation metric; require the shared-operator setup the
			// deviation experiments use.
			if ref.Operator() != op {
				return nil, fmt.Errorf("sim: dynamics %q set but lockstep process %T does not share the main operator",
					envDyn.Name(), ref)
			}
			retargeters = append(retargeters, rrt)
		}
		var err error
		applier, err = envdyn.NewApplier(op.Speeds(), op.Graph().NumNodes(), envDyn)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}

	// requireInjectors validates that the main and every lockstep process
	// absorb the same injections (a reference that cannot would silently
	// drift and corrupt every deviation metric).
	requireInjectors := func(src, name string) (core.Injector, error) {
		inj, ok := r.Proc.(core.Injector)
		if !ok {
			return nil, fmt.Errorf("sim: %s %q set but process %T does not implement core.Injector", src, name, r.Proc)
		}
		for _, ref := range r.Lockstep {
			if _, ok := ref.(core.Injector); !ok {
				return nil, fmt.Errorf("sim: %s %q set but lockstep process %T does not implement core.Injector", src, name, ref)
			}
		}
		return inj, nil
	}

	// Scenario load half: injected right after the scenario's speed half,
	// before any Workload, so the coupled event lands as one unit.
	var scInjector core.Injector
	var scMut workload.Mutator
	var scDeltas []int64
	if r.Scenario != nil {
		inj, err := requireInjectors("Scenario", r.Scenario.Name())
		if err != nil {
			return nil, err
		}
		scInjector = inj
		op := r.Proc.Operator()
		scMut = r.Scenario.Mutator(op.Graph(), op.Speeds())
		scDeltas = make([]int64, op.Graph().NumNodes())
	}

	var injector core.Injector
	var deltas []int64
	if r.Workload != nil {
		inj, err := requireInjectors("Workload", r.Workload.Name())
		if err != nil {
			return nil, err
		}
		injector = inj
		deltas = make([]int64, workloadLoads(r.Proc.Loads()).Len())
	}

	// β re-optimization trigger: the baseline starts at the initial total
	// speed.
	var reoptState *BetaReoptState
	if r.BetaReopt != nil {
		bs, ok := r.Proc.(core.BetaSetter)
		if !ok {
			return nil, fmt.Errorf("sim: BetaReopt set but process %T does not implement core.BetaSetter", r.Proc)
		}
		setters := []core.BetaSetter{bs}
		for _, ref := range r.Lockstep {
			rbs, ok := ref.(core.BetaSetter)
			if !ok {
				return nil, fmt.Errorf("sim: BetaReopt set but lockstep process %T does not implement core.BetaSetter", ref)
			}
			setters = append(setters, rbs)
		}
		reoptState = NewBetaReoptState(*r.BetaReopt, r.Proc.Operator().Speeds().Sum(), setters...)
	}

	// Runtime contract checks (conservation, gated non-negativity,
	// column-stochasticity), compiled in with -tags=invariants only.
	var chk *invariantChecker
	if invariants.Enabled {
		chk = newInvariantChecker(r.Proc)
	}

	record := func(round int) error {
		row := make([]float64, len(ms))
		for i, m := range ms {
			row[i] = m.Compute(r.Proc)
		}
		return series.Append(round, row...)
	}
	// Round 0 snapshot (initial state).
	if err := record(0); err != nil {
		return nil, err
	}
	for round := 1; round <= rounds; round++ {
		sw := r.Telemetry.StartRound()
		r.Proc.Step()
		if chk != nil {
			chk.afterStep(round)
		}
		for _, ref := range r.Lockstep {
			ref.Step()
		}
		// Speed dynamics before any injection: a burst landing in the same
		// round as a speed event is injected into the already-moved target,
		// and the policy below sees both.
		scChanged := 0
		if applier != nil {
			sp, changed, err := applier.SpeedsAt(round)
			if err != nil {
				return nil, fmt.Errorf("sim: dynamics %q at round %d: %w", envDyn.Name(), round, err)
			}
			if changed > 0 {
				op := r.Proc.Operator()
				if err := reweightOp(r.Proc, op, sp); err != nil {
					return nil, fmt.Errorf("sim: dynamics %q at round %d: %w", envDyn.Name(), round, err)
				}
				for _, rt := range retargeters {
					if err := rt.Retarget(op); err != nil {
						return nil, fmt.Errorf("sim: dynamics %q at round %d: %w", envDyn.Name(), round, err)
					}
				}
				if chk != nil {
					chk.afterReweight(round)
				}
				if r.Scenario != nil {
					scChanged = changed
				} else {
					res.SpeedEvents = append(res.SpeedEvents, SpeedEvent{Round: round, Nodes: changed, Sum: sp.Sum()})
					r.Telemetry.Reweight(round, changed, sp.Sum())
				}
			}
		}
		// β re-optimization: depends on the speeds alone, so it runs right
		// after the reweight and before any load moves.
		if reoptState != nil {
			ev, err := reoptState.Step(round, r.Proc.Operator())
			if err != nil {
				return nil, err
			}
			if ev != nil {
				res.BetaEvents = append(res.BetaEvents, *ev)
				r.Telemetry.BetaReopt(round, ev.Beta)
			}
			res.StaleBetaRounds = reoptState.Stale
		}
		// Scenario load half: the derived migration/burst deltas of the
		// same timeline, applied as one unit with the speed half above.
		if scMut != nil {
			for i := range scDeltas {
				scDeltas[i] = 0
			}
			var moved int64
			if scMut.Deltas(round, workloadLoads(r.Proc.Loads()), scDeltas) {
				for _, d := range scDeltas {
					if d > 0 {
						moved += d
					}
				}
				if err := scInjector.Inject(scDeltas); err != nil {
					return nil, fmt.Errorf("sim: scenario %q at round %d: %w", r.Scenario.Name(), round, err)
				}
				for _, ref := range r.Lockstep {
					if err := ref.(core.Injector).Inject(scDeltas); err != nil {
						return nil, fmt.Errorf("sim: scenario %q at round %d (lockstep): %w", r.Scenario.Name(), round, err)
					}
				}
				if chk != nil {
					chk.afterInject(scDeltas)
				}
			}
			if scChanged > 0 || moved > 0 {
				res.ScenarioEvents = append(res.ScenarioEvents, ScenarioEvent{
					Round: round, Nodes: scChanged, Moved: moved,
					Sum: r.Proc.Operator().Speeds().Sum(),
				})
				r.Telemetry.Scenario(round, scChanged, float64(moved))
			}
		}
		if injector != nil {
			for i := range deltas {
				deltas[i] = 0
			}
			if r.Workload.Deltas(round, workloadLoads(r.Proc.Loads()), deltas) {
				if err := injector.Inject(deltas); err != nil {
					return nil, fmt.Errorf("sim: workload %q at round %d: %w", r.Workload.Name(), round, err)
				}
				for _, ref := range r.Lockstep {
					if err := ref.(core.Injector).Inject(deltas); err != nil {
						return nil, fmt.Errorf("sim: workload %q at round %d (lockstep): %w", r.Workload.Name(), round, err)
					}
				}
				if chk != nil {
					chk.afterInject(deltas)
				}
				if r.Telemetry != nil {
					var net int64
					for _, d := range deltas {
						net += d
					}
					r.Telemetry.Inject(round, float64(net))
				}
			}
		}
		// Policy evaluation deliberately follows workload injection above:
		// an adaptive controller must see the post-burst loads in the same
		// round the burst lands, or re-arming lags the recording by a round.
		if policy != nil {
			if ev, ok := core.ApplyAdaptive(r.Proc, policy); ok {
				ev.Round = round // the driver's round counter, not p.Round()
				res.Switches = append(res.Switches, ev)
				if res.SwitchRound < 0 {
					res.SwitchRound = round
				}
				r.Telemetry.Switch(round, int(ev.To))
			}
		}
		if r.OnRound != nil {
			r.OnRound(round, r.Proc)
		}
		// Per-round telemetry gauges: the O(n) scans are guarded on the
		// probe so a detached run pays nothing; the values are plain
		// read-and-record, feeding nothing back into the trajectory.
		if r.Telemetry != nil {
			sw.Stop()
			sp := r.Proc.Operator().Speeds()
			n := float64(r.Proc.Operator().Graph().NumNodes())
			disc := intsOrFloats(r.Proc, metrics.Discrepancy[int64], metrics.Discrepancy[float64])
			pot := intsOrFloats(r.Proc,
				func(x []int64) float64 { return metrics.Potential(x, sp) / n },
				func(x []float64) float64 { return metrics.Potential(x, sp) / n })
			r.Telemetry.RoundCompleted(round, disc, pot, sp.Sum(), float64(res.StaleBetaRounds))
		}
		if round%every == 0 || round == rounds {
			if err := record(round); err != nil {
				return nil, err
			}
		}
	}
	res.Rounds = rounds
	return res, nil
}
