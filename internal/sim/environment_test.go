package sim

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"diffusionlb/internal/core"
	"diffusionlb/internal/envdyn"
	"diffusionlb/internal/graph"
	"diffusionlb/internal/hetero"
	"diffusionlb/internal/metrics"
	"diffusionlb/internal/spectral"
	"diffusionlb/internal/workload"
)

// envFixture builds a torus with two-class speeds, a proportionally
// balanced start and a one-shot throttle environment.
type envFixture struct {
	g       *graph.Graph
	sp      *hetero.Speeds
	x0      []int64
	n       int
	envSpec string
	event   int
}

func newEnvFixture(t testing.TB, side, event int) *envFixture {
	t.Helper()
	g, err := graph.Torus2D(side, side)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	sp, err := hetero.TwoClass(n, 0.25, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	x0, err := metrics.ProportionalLoad(int64(n)*1000, sp)
	if err != nil {
		t.Fatal(err)
	}
	return &envFixture{
		g: g, sp: sp, x0: x0, n: n,
		envSpec: fmt.Sprintf("throttle:at=%d,frac=0.125,factor=0.25", event),
		event:   event,
	}
}

func (f *envFixture) operator(t testing.TB) *spectral.Operator {
	t.Helper()
	op, err := spectral.NewOperator(f.g, f.sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func (f *envFixture) dynamics(t testing.TB) envdyn.Dynamics {
	t.Helper()
	dyn, err := envdyn.FromSpec(f.envSpec, f.n, 5)
	if err != nil {
		t.Fatal(err)
	}
	return dyn
}

// TestRunnerAppliesEnvironment: the throttle event must reweight the shared
// operator (speed_sum drops), record a SpeedEvent, and re-inflate the
// ideal-load drift, which the scheme then drives back down.
func TestRunnerAppliesEnvironment(t *testing.T) {
	f := newEnvFixture(t, 8, 20)
	op := f.operator(t)
	proc, err := core.NewDiscrete(core.Config{Op: op, Kind: core.SOS, Beta: 1.8}, nil, 3, f.x0)
	if err != nil {
		t.Fatal(err)
	}
	sumBefore := op.Speeds().Sum()
	res, err := (&Runner{
		Proc:        proc,
		Environment: f.dynamics(t),
		Every:       1,
		Metrics:     EnvironmentMetrics(),
	}).Run(120)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SpeedEvents) != 1 {
		t.Fatalf("SpeedEvents = %v, want exactly the throttle event", res.SpeedEvents)
	}
	ev := res.SpeedEvents[0]
	if ev.Round != f.event || ev.Nodes == 0 || ev.Sum >= sumBefore {
		t.Fatalf("SpeedEvent = %+v, want round %d with a reduced speed sum (< %g)", ev, f.event, sumBefore)
	}
	if got := op.Speeds().Sum(); got != ev.Sum {
		t.Errorf("operator speed sum %g, event says %g — reweight not applied in place?", got, ev.Sum)
	}
	sums, err := res.Series.Column("speed_sum")
	if err != nil {
		t.Fatal(err)
	}
	if sums[f.event-1] != sumBefore || sums[f.event] != ev.Sum {
		t.Errorf("speed_sum around the event = %g -> %g, want %g -> %g",
			sums[f.event-1], sums[f.event], sumBefore, ev.Sum)
	}
	drift, err := res.Series.Column("ideal_drift")
	if err != nil {
		t.Fatal(err)
	}
	pre := drift[f.event-1]
	if drift[f.event] < 4*pre+8 {
		t.Errorf("drift %g -> %g across the event; the moved target should re-inflate it", pre, drift[f.event])
	}
	retrack, err := RoundsToRetrack(res.Series, "ideal_drift", f.event, pre+8)
	if err != nil {
		t.Fatal(err)
	}
	if retrack <= 0 {
		t.Errorf("RoundsToRetrack = %d, want a positive re-tracking time", retrack)
	}
}

// TestRunnerEnvironmentRequiresRetargeter mirrors the workload/Injector
// configuration checks.
func TestRunnerEnvironmentRequiresRetargeter(t *testing.T) {
	f := newEnvFixture(t, 4, 5)
	op := f.operator(t)
	proc, err := core.NewDiscrete(core.Config{Op: op, Kind: core.FOS}, nil, 1, f.x0)
	if err != nil {
		t.Fatal(err)
	}
	dyn := f.dynamics(t)
	if _, err := (&Runner{Proc: noRetarget{proc}, Environment: dyn}).Run(5); err == nil {
		t.Fatal("Runner should reject an environment on a process without Retarget")
	}
	if _, err := (&Runner{Proc: proc, Lockstep: []core.Process{noRetarget{proc}}, Environment: dyn}).Run(5); err == nil {
		t.Fatal("Runner should reject a non-retargetable lockstep process")
	}
	// A lockstep reference on its own operator copy would chase stale
	// targets.
	other, err := core.NewContinuous(core.Config{Op: f.operator(t), Kind: core.FOS}, make([]float64, f.n))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Runner{Proc: proc, Lockstep: []core.Process{other}, Environment: dyn}).Run(5); err == nil {
		t.Fatal("Runner should reject a lockstep process on a different operator")
	}
}

// noRetarget hides the Retarget method of an embedded process.
type noRetarget struct{ *core.Discrete }

func (n noRetarget) Retarget() {} // different arity: does not satisfy core.Retargeter

// TestEnvironmentLockstepSharedOperator: a continuous lockstep reference on
// the shared operator follows the same speed trajectory, so the deviation
// metric stays at rounding scale across the event.
func TestEnvironmentLockstepSharedOperator(t *testing.T) {
	f := newEnvFixture(t, 6, 10)
	op := f.operator(t)
	proc, err := core.NewDiscrete(core.Config{Op: op, Kind: core.SOS, Beta: 1.5}, nil, 3, f.x0)
	if err != nil {
		t.Fatal(err)
	}
	xf := make([]float64, f.n)
	for i, v := range f.x0 {
		xf[i] = float64(v)
	}
	ref, err := core.NewContinuous(core.Config{Op: op, Kind: core.SOS, Beta: 1.5}, xf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Runner{
		Proc:        proc,
		Lockstep:    []core.Process{ref},
		Environment: f.dynamics(t),
		Every:       1,
		Metrics:     []Metric{DeviationFrom(ref, "dev")},
	}).Run(60)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SpeedEvents) != 1 {
		t.Fatalf("SpeedEvents = %v", res.SpeedEvents)
	}
	if ref.Retargets() != 1 {
		t.Errorf("lockstep reference saw %d retargets, want 1", ref.Retargets())
	}
	dev, err := res.Series.Last("dev")
	if err != nil {
		t.Fatal(err)
	}
	if dev > 100 {
		t.Errorf("deviation %g after the event — lockstep reference chased a stale target", dev)
	}
}

// TestEnvironmentCheckpointResumeAcrossSpeedEvent is the satellite
// checkpoint coverage: a run cut around a speed event and resumed into a
// fresh process/operator/applier continues bit-identically, because the
// effective speeds are a pure function of the round. Two cut positions
// matter: BEFORE the event (the event replays after the resume) and AFTER
// it (the resume recipe must re-apply the effective speeds of the cut
// round before the first step, exactly as the Checkpoint.Retargets doc
// prescribes — a fresh base operator would otherwise run one round on
// stale speeds).
func TestEnvironmentCheckpointResumeAcrossSpeedEvent(t *testing.T) {
	for _, cut := range []int{25, 55} {
		t.Run(map[int]string{25: "cut-before-event", 55: "cut-after-event"}[cut], func(t *testing.T) {
			testEnvCheckpointResume(t, cut)
		})
	}
}

func testEnvCheckpointResume(t *testing.T, cut int) {
	const rounds = 80
	f := newEnvFixture(t, 6, 40) // throttle event at round 40
	wlSpec, wlSeed := "churn:6:30:30", uint64(21)

	newProc := func(op *spectral.Operator) *core.Discrete {
		proc, err := core.NewDiscrete(core.Config{Op: op, Kind: core.SOS, Beta: 1.8}, nil, 9, f.x0)
		if err != nil {
			t.Fatal(err)
		}
		return proc
	}
	newWl := func() workload.Mutator {
		wl, err := workload.FromSpec(wlSpec, f.n, wlSeed)
		if err != nil {
			t.Fatal(err)
		}
		return wl
	}

	// Uninterrupted reference.
	refOp := f.operator(t)
	ref := newProc(refOp)
	refRes, err := (&Runner{Proc: ref, Environment: f.dynamics(t), Workload: newWl()}).Run(rounds)
	if err != nil {
		t.Fatal(err)
	}
	if len(refRes.SpeedEvents) != 1 || refRes.SpeedEvents[0].Round != 40 {
		t.Fatalf("reference run events %v, want the round-40 throttle", refRes.SpeedEvents)
	}

	// Interrupted run: stop at the cut (before the event), checkpoint,
	// restore into a fresh process over a fresh base operator, and continue
	// manually with a fresh applier and same-seed workload.
	firstOp := f.operator(t)
	first := newProc(firstOp)
	if _, err := (&Runner{Proc: first, Environment: f.dynamics(t), Workload: newWl()}).Run(cut); err != nil {
		t.Fatal(err)
	}
	cp := first.Checkpoint()

	secondOp := f.operator(t)
	second := newProc(secondOp)
	if err := second.Restore(cp); err != nil {
		t.Fatal(err)
	}
	applier, err := envdyn.NewApplier(secondOp.Speeds(), f.n, f.dynamics(t))
	if err != nil {
		t.Fatal(err)
	}
	// Re-establish the cut round's effective speeds before the first step:
	// the fresh operator carries the base speeds, so when the cut lands
	// after the event the next step would otherwise run on stale targets.
	if sp, changed, err := applier.SpeedsAt(cut); err != nil {
		t.Fatal(err)
	} else if changed > 0 {
		if cut < 40 {
			t.Fatalf("speeds changed at the pre-event cut round %d", cut)
		}
		if err := secondOp.Reweight(sp); err != nil {
			t.Fatal(err)
		}
		if err := second.Retarget(secondOp); err != nil {
			t.Fatal(err)
		}
	}
	wl := newWl()
	deltas := make([]int64, f.n)
	for second.Round() < rounds {
		second.Step()
		round := second.Round()
		sp, changed, err := applier.SpeedsAt(round)
		if err != nil {
			t.Fatal(err)
		}
		if changed > 0 {
			if err := secondOp.Reweight(sp); err != nil {
				t.Fatal(err)
			}
			if err := second.Retarget(secondOp); err != nil {
				t.Fatal(err)
			}
		}
		for i := range deltas {
			deltas[i] = 0
		}
		if wl.Deltas(round, workload.IntLoads(second.LoadsInt()), deltas) {
			if err := second.Inject(deltas); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, v := range ref.LoadsInt() {
		if second.LoadsInt()[i] != v {
			t.Fatalf("resumed environment run diverged at node %d: %d vs %d", i, second.LoadsInt()[i], v)
		}
	}
	if refTok, _ := ref.Traffic(); func() int64 { tok, _ := second.Traffic(); return tok }() != refTok {
		t.Error("traffic counters diverged across the resume")
	}
}

// TestEnvironmentDeterministicAcrossStepWorkers is part of the acceptance
// criterion: speed-event histories, switch histories and final loads are
// bit-identical for every per-step worker count. 4096 nodes puts Workers>1
// on the real parallelFor goroutine path.
func TestEnvironmentDeterministicAcrossStepWorkers(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	g, err := graph.Torus2D(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	sp, err := hetero.TwoClass(n, 0.25, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	x0, err := metrics.ProportionalLoad(int64(n)*200, sp)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) (*Result, []int64) {
		op, err := spectral.NewOperator(g, sp, nil)
		if err != nil {
			t.Fatal(err)
		}
		proc, err := core.NewDiscrete(core.Config{Op: op, Kind: core.SOS, Beta: 1.9, Workers: workers},
			core.RandomizedRounder{}, 7, x0)
		if err != nil {
			t.Fatal(err)
		}
		dyn, err := envdyn.FromSpec("throttle:at=25,frac=0.125,factor=0.25+jitter:sigma=0.05,frac=0.03", n, 5)
		if err != nil {
			t.Fatal(err)
		}
		policy, err := core.PolicyFromSpec("adaptive:16:64:10")
		if err != nil {
			t.Fatal(err)
		}
		res, err := (&Runner{Proc: proc, Environment: dyn, Adaptive: policy, Every: 10,
			Metrics: EnvironmentMetrics()}).Run(60)
		if err != nil {
			t.Fatal(err)
		}
		return res, append([]int64(nil), proc.LoadsInt()...)
	}
	seqRes, seqLoads := run(1)
	if len(seqRes.SpeedEvents) < 2 {
		t.Fatalf("scenario produced %d speed events; jitter should fire repeatedly", len(seqRes.SpeedEvents))
	}
	for _, workers := range []int{4, 8} {
		parRes, parLoads := run(workers)
		if !reflect.DeepEqual(parRes.SpeedEvents, seqRes.SpeedEvents) {
			t.Fatalf("Workers=%d speed events differ from sequential", workers)
		}
		if !reflect.DeepEqual(parRes.Switches, seqRes.Switches) {
			t.Fatalf("Workers=%d switch history differs from sequential", workers)
		}
		if !reflect.DeepEqual(parLoads, seqLoads) {
			t.Fatalf("Workers=%d final loads differ from sequential", workers)
		}
	}
}
