package sim

import (
	"testing"

	"diffusionlb/internal/actor"
	"diffusionlb/internal/core"
	"diffusionlb/internal/envdyn"
	"diffusionlb/internal/graph"
	"diffusionlb/internal/hetero"
	"diffusionlb/internal/invariants"
	"diffusionlb/internal/spectral"
	"diffusionlb/internal/workload"
)

// newActorProc builds a small actor runtime on a torus for the invariant
// integration tests.
func newActorProc(t *testing.T, actors, stale int) (*actor.Runtime, *spectral.Operator, int) {
	t.Helper()
	g, err := graph.Torus2D(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	s := make([]float64, n)
	for i := range s {
		s[i] = 1 + float64(i%4)*0.5
	}
	sp, err := hetero.New(s)
	if err != nil {
		t.Fatal(err)
	}
	op, err := spectral.NewOperator(g, sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	x0 := make([]int64, n)
	for i := range x0 {
		x0[i] = int64((i * 13) % 101)
	}
	a, err := actor.New(op, core.SOS, 1.5, nil, 17, x0, actor.Options{Actors: actors, Stale: stale})
	if err != nil {
		t.Fatal(err)
	}
	return a, op, n
}

// TestRunnerDrivesActorRuntime: the Runner drives the actor runtime through
// a dynamic workload and a speed event — under -tags=invariants this routes
// every round through the conservation checker, whose baseline for an
// InFlightReporter includes the transport's in-flight load. Both modes run
// so the barrier path (in-flight identically zero) and the async path
// (tokens legitimately riding version rings) are covered by race+invariants
// CI.
func TestRunnerDrivesActorRuntime(t *testing.T) {
	for _, tc := range []struct {
		name  string
		stale int
	}{
		{"barrier", 0},
		{"stale=2", 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a, _, n := newActorProc(t, 3, tc.stale)
			wl, err := workload.FromSpec("poisson:0.5", n, 3)
			if err != nil {
				t.Fatal(err)
			}
			dyn, err := envdyn.FromSpec("throttle:at=10,frac=0.125,factor=0.25", n, 5)
			if err != nil {
				t.Fatal(err)
			}
			res, err := (&Runner{
				Proc:        a,
				Workload:    wl,
				Environment: dyn,
				Metrics:     append(DynamicMetrics(), EnvironmentMetrics()...),
			}).Run(40)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.SpeedEvents) != 1 {
				t.Fatalf("SpeedEvents = %v, want exactly the throttle event", res.SpeedEvents)
			}
			if a.Round() != 40 {
				t.Fatalf("runtime completed %d rounds, want 40", a.Round())
			}
		})
	}
}

// leakyTransport is a stubProc that also claims to be an InFlightReporter:
// its step hides one token per round in a "transport" but misreports the
// in-flight total as zero — exactly the bug class the extended conservation
// check exists to catch.
type leakyTransport struct {
	stubProc
}

func (p *leakyTransport) InFlightLoad() int64 { return 0 }

// honestTransport hides tokens too but reports them, so conservation on
// Σ loads + in-flight holds.
type honestTransport struct {
	stubProc
	hidden int64
}

func (p *honestTransport) InFlightLoad() int64 { return p.hidden }

// TestInvariantsUseInFlightLoad: the conservation check must add the
// reported in-flight load to the round total — an honest transport passes
// while a misreporting one trips, for the same load trajectory.
func TestInvariantsUseInFlightLoad(t *testing.T) {
	if !invariants.Enabled {
		t.Skip("build without -tags=invariants")
	}
	leaky := &leakyTransport{}
	leaky.x = []int64{5, 5}
	leaky.step = func(x []int64) { x[0]-- } // token enters the transport, report says 0
	runExpectingViolation(t, leaky)

	honest := &honestTransport{}
	honest.x = []int64{5, 5}
	honest.step = func(x []int64) { x[0]--; honest.hidden++ }
	r := &Runner{Proc: honest, Metrics: []Metric{TotalLoad()}}
	if _, err := r.Run(5); err != nil {
		t.Fatalf("honest transport tripped: %v", err)
	}
}
