package sim

import (
	"fmt"

	"diffusionlb/internal/core"
	"diffusionlb/internal/invariants"
	"diffusionlb/internal/numeric"
	"diffusionlb/internal/shard"
)

// invariantChecker asserts the runtime conservation contract on the main
// process while a Runner drives it. The Runner only builds one when the
// build carries -tags=invariants (invariants.Enabled), so release builds
// pay nothing.
//
// Per round it asserts, via invariants.Must (which panics with a
// *invariants.Violation):
//
//   - total load conservation after every Step: exact for integer engines,
//     within invariants.ConservationTol for float engines (the float
//     baseline is refreshed each round, so reduction error cannot
//     accumulate into a spurious trip, and every injection shifts the
//     baseline by its delta sum — the one legitimate way totals move);
//   - non-negativity after a Step, but only when the process certifies it
//     (core.NonNegativeGuarantor, queried every round: hybrid switching
//     changes the answer) AND the vector was non-negative going in — SOS
//     negative transients and workload removals are legitimate and must
//     not trip the runtime contract;
//   - column-stochasticity of the operator after every Reweight, within
//     invariants.StochasticTol.
//
// When the process runs on a shard layout (core.Sharded), every full-vector
// walk — the conservation reductions and the post-reweight column sums —
// goes through that layout with per-shard partials combined in shard order,
// so invariant-checked runs at 2²⁰ nodes keep pace with the step path
// instead of adding single-threaded O(n + |E|) scans per round. The
// grouping is fixed by the layout, so the float baseline stays bit-stable
// across worker counts.
type invariantChecker struct {
	proc       core.Process
	guarantor  core.NonNegativeGuarantor // nil when the process cannot certify
	inFlight   core.InFlightReporter     // nil when the transport holds no load
	lay        *shard.Layout             // nil when the process is not Sharded
	workers    int
	prevNonNeg bool
	isInt      bool
	expInt     int64
	expFloat   float64
	cols       []float64
}

func newInvariantChecker(p core.Process) *invariantChecker {
	c := &invariantChecker{proc: p}
	c.guarantor, _ = p.(core.NonNegativeGuarantor)
	c.inFlight, _ = p.(core.InFlightReporter)
	if sh, ok := p.(core.Sharded); ok {
		c.lay, c.workers = sh.ShardLayout(), sh.StepWorkers()
	}
	lv := p.Loads()
	if lv.Int != nil {
		c.isInt = true
		c.expInt = c.sumInt(lv.Int) + c.inFlightLoad()
	} else {
		c.expFloat = c.sumFloat(lv.Float) + float64(c.inFlightLoad())
	}
	c.refreshNonNeg(lv)
	return c
}

// inFlightLoad returns the transport's in-flight load, zero for processes
// whose steps move all flux within the round. Conservation for a
// bounded-staleness transport (core.InFlightReporter) is on
// Σ loads + in-flight: flux debited from a sender may ride a version ring
// for up to the staleness bound before the receiver credits it.
func (c *invariantChecker) inFlightLoad() int64 {
	if c.inFlight == nil {
		return 0
	}
	return c.inFlight.InFlightLoad()
}

// sumInt reduces an integer load vector, through the shard layout when the
// process has one.
func (c *invariantChecker) sumInt(x []int64) int64 {
	if c.lay != nil && c.lay.Nodes() == len(x) {
		return shard.SumInt64(c.lay, c.workers, x)
	}
	return numeric.SumInt64(x)
}

// sumFloat reduces a float load vector with the layout's fixed grouping.
func (c *invariantChecker) sumFloat(x []float64) float64 {
	if c.lay != nil && c.lay.Nodes() == len(x) {
		return shard.SumFloat64(c.lay, c.workers, x)
	}
	return numeric.Sum(x)
}

func (c *invariantChecker) refreshNonNeg(lv core.LoadView) {
	if c.isInt {
		c.prevNonNeg = invariants.NonNegativeInt64(lv.Int, "") == nil
	} else {
		c.prevNonNeg = invariants.NonNegativeFloat64(lv.Float, invariants.NonNegativeTol, "") == nil
	}
}

// afterStep asserts conservation — and non-negativity, when guaranteed —
// right after the round's Step.
func (c *invariantChecker) afterStep(round int) {
	ctx := fmt.Sprintf("sim: after step of round %d", round)
	lv := c.proc.Loads()
	if c.isInt {
		invariants.Must(invariants.ConservedInt64(c.sumInt(lv.Int)+c.inFlightLoad(), c.expInt, ctx))
	} else {
		got := c.sumFloat(lv.Float) + float64(c.inFlightLoad())
		invariants.Must(invariants.ConservedFloat64(got, c.expFloat, invariants.ConservationTol, ctx))
		c.expFloat = got
	}
	if c.prevNonNeg && c.guarantor != nil && c.guarantor.GuaranteesNonNegative() {
		if c.isInt {
			invariants.Must(invariants.NonNegativeInt64(lv.Int, ctx))
		} else {
			invariants.Must(invariants.NonNegativeFloat64(lv.Float, invariants.NonNegativeTol, ctx))
		}
	}
	c.refreshNonNeg(lv)
}

// afterInject shifts the conservation baseline by the injected delta sum
// and refreshes the non-negativity precondition (a removal may legally
// drive a node negative; that is the workload's doing, not the engine's).
func (c *invariantChecker) afterInject(deltas []int64) {
	var sum int64
	for _, d := range deltas {
		sum += d
	}
	if c.isInt {
		c.expInt += sum
	} else {
		c.expFloat += float64(sum)
	}
	c.refreshNonNeg(c.proc.Loads())
}

// afterReweight asserts the reweighted operator is still column-stochastic
// — the structural property load conservation rests on. The column sums
// gather per shard when the process has a layout over the operator's graph.
func (c *invariantChecker) afterReweight(round int) {
	op := c.proc.Operator()
	n := op.Graph().NumNodes()
	if len(c.cols) != n {
		c.cols = make([]float64, n)
	}
	invariants.Must(op.ColumnSumsPar(c.lay, c.workers, c.cols))
	invariants.Must(invariants.ColumnStochastic(c.cols, invariants.StochasticTol,
		fmt.Sprintf("sim: operator after reweight at round %d", round)))
}
