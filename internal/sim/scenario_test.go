package sim

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"diffusionlb/internal/core"
	"diffusionlb/internal/envdyn"
	"diffusionlb/internal/graph"
	"diffusionlb/internal/hetero"
	"diffusionlb/internal/metrics"
	"diffusionlb/internal/nodeset"
	"diffusionlb/internal/scenario"
	"diffusionlb/internal/spectral"
	"diffusionlb/internal/workload"
)

// scenarioFixture builds the standard coupled-scenario testbed: a two-class
// torus with a proportional start.
type scenarioFixture struct {
	g  *graph.Graph
	sp *hetero.Speeds
	x0 []int64
	n  int
}

func newScenarioFixture(t testing.TB, side int) *scenarioFixture {
	t.Helper()
	g, err := graph.Torus2D(side, side)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	sp, err := hetero.TwoClass(n, 0.25, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	x0, err := metrics.ProportionalLoad(int64(n)*1000, sp)
	if err != nil {
		t.Fatal(err)
	}
	return &scenarioFixture{g: g, sp: sp, x0: x0, n: n}
}

func (f *scenarioFixture) operator(t testing.TB) *spectral.Operator {
	t.Helper()
	op, err := spectral.NewOperator(f.g, f.sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func (f *scenarioFixture) scenario(t testing.TB, spec string, seed uint64) *scenario.Scenario {
	t.Helper()
	s, err := scenario.FromSpec(spec, f.n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRunnerAppliesScenario: a coupled drain must, in every ramp round,
// change speeds AND move load in one recorded unit, conserve total load
// exactly, and leave the drained nodes empty at the end of the ramp.
func TestRunnerAppliesScenario(t *testing.T) {
	f := newScenarioFixture(t, 8)
	op := f.operator(t)
	proc, err := core.NewDiscrete(core.Config{Op: op, Kind: core.SOS, Beta: 1.8}, nil, 3, f.x0)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, v := range f.x0 {
		total += v
	}
	sumBefore := op.Speeds().Sum()
	drained := nodeset.Pick(f.sp, f.n, 0.125, nodeset.Fast, 0) // seed irrelevant for sel=fast

	var rampEndLoads []int64
	res, err := (&Runner{
		Proc:     proc,
		Scenario: f.scenario(t, "drain:at=20,frac=0.125,ramp=4", 5),
		Every:    1,
		Metrics:  ScenarioMetrics(),
		OnRound: func(round int, p core.Process) {
			if round == 23 {
				rampEndLoads = append([]int64(nil), p.Loads().Int...)
			}
		},
	}).Run(60)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SpeedEvents) != 0 {
		t.Errorf("scenario run recorded %d SpeedEvents; coupled events belong in ScenarioEvents", len(res.SpeedEvents))
	}
	if len(res.ScenarioEvents) != 4 {
		t.Fatalf("ScenarioEvents = %v, want the 4 ramp rounds", res.ScenarioEvents)
	}
	for i, ev := range res.ScenarioEvents {
		if ev.Round != 20+i {
			t.Errorf("event %d at round %d, want %d", i, ev.Round, 20+i)
		}
		if ev.Moved == 0 {
			t.Errorf("event %+v moved no load; every ramp round migrates", ev)
		}
		// Effective speeds move on every ramp round until the clamp floor of
		// 1 is reached (multipliers 0.75/0.5/0.25 on speed 4 → 3/2/1); the
		// final ramp round only finishes the migration.
		if wantSpeed := i < 3; (ev.Nodes > 0) != wantSpeed {
			t.Errorf("event %+v: speed-changed nodes = %d, want change %v", ev, ev.Nodes, wantSpeed)
		}
	}
	if got := op.Speeds().Sum(); got >= sumBefore || got != res.ScenarioEvents[3].Sum {
		t.Errorf("post-drain speed sum %g (start %g, event says %g)", got, sumBefore, res.ScenarioEvents[3].Sum)
	}
	for _, i := range drained {
		if op.Speeds().Of(i) != 1 {
			t.Errorf("drained node %d still at speed %g", i, op.Speeds().Of(i))
		}
		if rampEndLoads[i] != 0 {
			t.Errorf("drained node %d held %d tokens at the end of the ramp", i, rampEndLoads[i])
		}
	}
	if got := proc.TotalLoad(); got != total {
		t.Errorf("total load %d -> %d; migration must conserve", total, got)
	}
	// The migration is not an external injection: nothing arrived from
	// outside the network.
	if added, removed := proc.Injected(); added != removed {
		t.Errorf("injection accounting %d/%d; migration must net to zero", added, removed)
	}
}

// TestRunnerScenarioConfigErrors mirrors the workload/environment
// configuration checks.
func TestRunnerScenarioConfigErrors(t *testing.T) {
	f := newScenarioFixture(t, 4)
	op := f.operator(t)
	proc, err := core.NewDiscrete(core.Config{Op: op, Kind: core.FOS}, nil, 1, f.x0)
	if err != nil {
		t.Fatal(err)
	}
	sc := f.scenario(t, "drain:at=5,frac=0.25", 1)
	env, err := envdyn.FromSpec("throttle:at=5,frac=0.25,factor=0.5", f.n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Runner{Proc: proc, Scenario: sc, Environment: env}).Run(3); err == nil {
		t.Error("Runner should reject Scenario and Environment together")
	}
	if _, err := (&Runner{Proc: noRetarget{proc}, Scenario: sc}).Run(3); err == nil {
		t.Error("Runner should reject a scenario on a process without Retarget")
	}
	cont, err := core.NewContinuous(core.Config{Op: f.operator(t), Kind: core.FOS}, make([]float64, f.n))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Runner{Proc: proc, Lockstep: []core.Process{cont}, Scenario: sc}).Run(3); err == nil {
		t.Error("Runner should reject a lockstep process on a different operator")
	}
}

// TestScenarioCheckpointResumeMidRamp is the satellite coverage: a run cut
// *inside* the drain ramp — mid-migration — and resumed into a fresh
// process/operator/applier continues bit-identically, because the speed
// half is a pure function of the round and the load half a pure function of
// (round, loads).
func TestScenarioCheckpointResumeMidRamp(t *testing.T) {
	for _, cut := range []int{25, 43, 55} {
		name := map[int]string{25: "cut-before-ramp", 43: "cut-mid-ramp", 55: "cut-after-ramp"}[cut]
		t.Run(name, func(t *testing.T) { testScenarioCheckpointResume(t, cut) })
	}
}

func testScenarioCheckpointResume(t *testing.T, cut int) {
	const rounds = 80
	const scSpec = "drain:at=40,frac=0.125,ramp=8" // ramp rounds 40..47
	const scSeed = 5
	f := newScenarioFixture(t, 6)
	wlSpec, wlSeed := "churn:6:30:30", uint64(21)

	newProc := func(op *spectral.Operator) *core.Discrete {
		proc, err := core.NewDiscrete(core.Config{Op: op, Kind: core.SOS, Beta: 1.8}, nil, 9, f.x0)
		if err != nil {
			t.Fatal(err)
		}
		return proc
	}
	newWl := func() workload.Mutator {
		wl, err := workload.FromSpec(wlSpec, f.n, wlSeed)
		if err != nil {
			t.Fatal(err)
		}
		return wl
	}

	// Uninterrupted reference (with a background workload on top, so the
	// scenario's migration and the workload's churn interleave).
	ref := newProc(f.operator(t))
	refRes, err := (&Runner{Proc: ref, Scenario: f.scenario(t, scSpec, scSeed), Workload: newWl()}).Run(rounds)
	if err != nil {
		t.Fatal(err)
	}
	if len(refRes.ScenarioEvents) != 8 || refRes.ScenarioEvents[0].Round != 40 {
		t.Fatalf("reference scenario events %v, want the 8-round ramp from 40", refRes.ScenarioEvents)
	}

	// Interrupted run: stop at the cut, checkpoint, restore into a fresh
	// process over a fresh base operator, and continue manually with a
	// fresh applier, scenario and same-seed workload.
	first := newProc(f.operator(t))
	if _, err := (&Runner{Proc: first, Scenario: f.scenario(t, scSpec, scSeed), Workload: newWl()}).Run(cut); err != nil {
		t.Fatal(err)
	}
	cp := first.Checkpoint()

	secondOp := f.operator(t)
	second := newProc(secondOp)
	if err := second.Restore(cp); err != nil {
		t.Fatal(err)
	}
	sc := f.scenario(t, scSpec, scSeed)
	base := secondOp.Speeds() // base speeds before any reweight
	applier, err := envdyn.NewApplier(base, f.n, sc.Dynamics())
	if err != nil {
		t.Fatal(err)
	}
	mut := sc.Mutator(secondOp.Graph(), base)
	// Re-establish the cut round's effective speeds before the first step:
	// inside the ramp the fresh operator's base speeds are stale.
	if sp, changed, err := applier.SpeedsAt(cut); err != nil {
		t.Fatal(err)
	} else if changed > 0 {
		if cut < 40 {
			t.Fatalf("speeds changed at the pre-ramp cut round %d", cut)
		}
		if err := secondOp.Reweight(sp); err != nil {
			t.Fatal(err)
		}
		if err := second.Retarget(secondOp); err != nil {
			t.Fatal(err)
		}
	}
	wl := newWl()
	deltas := make([]int64, f.n)
	for second.Round() < rounds {
		second.Step()
		round := second.Round()
		sp, changed, err := applier.SpeedsAt(round)
		if err != nil {
			t.Fatal(err)
		}
		if changed > 0 {
			if err := secondOp.Reweight(sp); err != nil {
				t.Fatal(err)
			}
			if err := second.Retarget(secondOp); err != nil {
				t.Fatal(err)
			}
		}
		for i := range deltas {
			deltas[i] = 0
		}
		if mut.Deltas(round, workload.IntLoads(second.LoadsInt()), deltas) {
			if err := second.Inject(deltas); err != nil {
				t.Fatal(err)
			}
		}
		for i := range deltas {
			deltas[i] = 0
		}
		if wl.Deltas(round, workload.IntLoads(second.LoadsInt()), deltas) {
			if err := second.Inject(deltas); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, v := range ref.LoadsInt() {
		if second.LoadsInt()[i] != v {
			t.Fatalf("resumed scenario run diverged at node %d: %d vs %d", i, second.LoadsInt()[i], v)
		}
	}
	refTok, _ := ref.Traffic()
	gotTok, _ := second.Traffic()
	if gotTok != refTok {
		t.Error("traffic counters diverged across the resume")
	}
}

// TestScenarioDeterministicAcrossStepWorkers: scenario histories and final
// loads are bit-identical for every per-step worker count (the cell-worker
// half of the criterion lives in the experiments and sweep tests).
func TestScenarioDeterministicAcrossStepWorkers(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	f := newScenarioFixture(t, 64)
	run := func(workers int) (*Result, []int64) {
		op := f.operator(t)
		proc, err := core.NewDiscrete(core.Config{Op: op, Kind: core.SOS, Beta: 1.9, Workers: workers},
			core.RandomizedRounder{}, 7, f.x0)
		if err != nil {
			t.Fatal(err)
		}
		policy, err := core.PolicyFromSpec("adaptive:16:64:10")
		if err != nil {
			t.Fatal(err)
		}
		res, err := (&Runner{
			Proc:     proc,
			Scenario: f.scenario(t, "drain:at=15,frac=0.125,ramp=6+cascade:at=30,waves=2,gap=8,jitter=3,frac=0.05,factor=0.5,load=5000", 5),
			Adaptive: policy,
			Every:    10,
			Metrics:  ScenarioMetrics(),
		}).Run(50)
		if err != nil {
			t.Fatal(err)
		}
		return res, append([]int64(nil), proc.LoadsInt()...)
	}
	seqRes, seqLoads := run(1)
	if len(seqRes.ScenarioEvents) < 8 {
		t.Fatalf("scenario produced %d events; drain ramp + cascade waves expected", len(seqRes.ScenarioEvents))
	}
	for _, workers := range []int{4, 8} {
		parRes, parLoads := run(workers)
		if !reflect.DeepEqual(parRes.ScenarioEvents, seqRes.ScenarioEvents) {
			t.Fatalf("Workers=%d scenario events differ from sequential", workers)
		}
		if !reflect.DeepEqual(parRes.Switches, seqRes.Switches) {
			t.Fatalf("Workers=%d switch history differs from sequential", workers)
		}
		if !reflect.DeepEqual(parLoads, seqLoads) {
			t.Fatalf("Workers=%d final loads differ from sequential", workers)
		}
	}
}

// TestRunnerBetaReopt: a drain that collapses the fast class re-optimizes β
// the round the drift crosses the threshold; the installed β is exactly the
// β_opt of the reweighted operator, and lockstep references get it too.
func TestRunnerBetaReopt(t *testing.T) {
	f := newScenarioFixture(t, 8)
	op := f.operator(t)
	proc, err := core.NewDiscrete(core.Config{Op: op, Kind: core.SOS, Beta: 1.8}, nil, 3, f.x0)
	if err != nil {
		t.Fatal(err)
	}
	xf := make([]float64, f.n)
	for i, v := range f.x0 {
		xf[i] = float64(v)
	}
	ref, err := core.NewContinuous(core.Config{Op: op, Kind: core.SOS, Beta: 1.8}, xf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Runner{
		Proc:      proc,
		Lockstep:  []core.Process{ref},
		Scenario:  f.scenario(t, "drain:at=10,frac=0.25,ramp=1", 5),
		BetaReopt: &BetaReopt{Threshold: 0.05, Power: spectral.PowerOptions{Tol: 1e-10}},
	}).Run(30)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BetaEvents) != 1 {
		t.Fatalf("BetaEvents = %v, want exactly one re-opt on the drain", res.BetaEvents)
	}
	ev := res.BetaEvents[0]
	if ev.Round != 10 {
		t.Errorf("re-opt at round %d, want the drain round 10", ev.Round)
	}
	lam, _, err := op.SecondEigenvalue(spectral.PowerOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	wantBeta, err := spectral.BetaOpt(lam)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Lambda != lam || ev.Beta != wantBeta {
		t.Errorf("BetaEvent %+v, want lambda=%g beta=%g of the post-drain operator", ev, lam, wantBeta)
	}
	if proc.Beta() != wantBeta || ref.Beta() != wantBeta {
		t.Errorf("engine betas %g/%g after the re-opt, want %g on main and lockstep", proc.Beta(), ref.Beta(), wantBeta)
	}
	if wantBeta >= 1.8 {
		t.Errorf("post-drain beta_opt %g did not drop below the stale 1.8 — scenario mis-sized", wantBeta)
	}
	if res.StaleBetaRounds != 0 {
		t.Errorf("StaleBetaRounds = %d without a cooldown", res.StaleBetaRounds)
	}
}

// TestRunnerBetaReoptCooldownCountsStaleRounds: with a slow drain ramp and
// a cooldown, qualifying drift accumulates stale-β rounds between re-opts.
func TestRunnerBetaReoptCooldownCountsStaleRounds(t *testing.T) {
	f := newScenarioFixture(t, 8)
	op := f.operator(t)
	proc, err := core.NewDiscrete(core.Config{Op: op, Kind: core.SOS, Beta: 1.8}, nil, 3, f.x0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Runner{
		Proc:      proc,
		Scenario:  f.scenario(t, "drain:at=5,frac=0.25,ramp=20", 5),
		BetaReopt: &BetaReopt{Threshold: 0.04, Cooldown: 8, Power: spectral.PowerOptions{Tol: 1e-8}},
	}).Run(40)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BetaEvents) < 2 {
		t.Fatalf("BetaEvents = %v, want repeated re-opts along the ramp", res.BetaEvents)
	}
	for i := 1; i < len(res.BetaEvents); i++ {
		if d := res.BetaEvents[i].Round - res.BetaEvents[i-1].Round; d < 8 {
			t.Errorf("re-opts %d rounds apart, cooldown is 8", d)
		}
	}
	if res.StaleBetaRounds == 0 {
		t.Error("StaleBetaRounds = 0; the cooldown should have delayed qualifying drift")
	}
}

// TestBetaReoptCheckpointResumeMidRamp: the re-opt trigger state lives in
// the driver, not in the engine checkpoint — a resumed run re-establishes
// it by seeding BetaReoptState from the original run's recorded BetaEvents
// (BaseSum/LastReopt) while Checkpoint.Beta carries the β value itself.
// With that recipe a cut in the middle of the drain ramp — between two β
// re-opts — resumes bit-identically, events and loads both.
func TestBetaReoptCheckpointResumeMidRamp(t *testing.T) {
	const rounds, cut = 80, 43
	const scSpec, scSeed = "drain:at=40,frac=0.25,ramp=8", uint64(5)
	f := newScenarioFixture(t, 8)
	cfg := BetaReopt{Threshold: 0.08, Cooldown: 2, Power: spectral.PowerOptions{Tol: 1e-10}}

	newProc := func(op *spectral.Operator) *core.Discrete {
		proc, err := core.NewDiscrete(core.Config{Op: op, Kind: core.SOS, Beta: 1.8}, nil, 9, f.x0)
		if err != nil {
			t.Fatal(err)
		}
		return proc
	}
	runTo := func(n int) (*core.Discrete, *Result) {
		proc := newProc(f.operator(t))
		res, err := (&Runner{Proc: proc, Scenario: f.scenario(t, scSpec, scSeed), BetaReopt: &cfg}).Run(n)
		if err != nil {
			t.Fatal(err)
		}
		return proc, res
	}

	ref, refRes := runTo(rounds)
	if len(refRes.BetaEvents) < 2 {
		t.Fatalf("reference run re-opted %d times, want re-opts on both sides of the cut: %v", len(refRes.BetaEvents), refRes.BetaEvents)
	}
	first, firstRes := runTo(cut)
	if n := len(firstRes.BetaEvents); n < 1 || firstRes.BetaEvents[n-1].Round > cut {
		t.Fatalf("cut-side run events %v, want at least one re-opt before the cut", firstRes.BetaEvents)
	}
	cp := first.Checkpoint()

	// Resume: fresh everything, then replay the recipe — re-apply the cut
	// round's speeds, restore the checkpoint (β included), and seed the
	// trigger from the last recorded event.
	secondOp := f.operator(t)
	second := newProc(secondOp)
	if err := second.Restore(cp); err != nil {
		t.Fatal(err)
	}
	sc := f.scenario(t, scSpec, scSeed)
	base := secondOp.Speeds()
	applier, err := envdyn.NewApplier(base, f.n, sc.Dynamics())
	if err != nil {
		t.Fatal(err)
	}
	mut := sc.Mutator(secondOp.Graph(), base)
	if sp, changed, err := applier.SpeedsAt(cut); err != nil {
		t.Fatal(err)
	} else if changed > 0 {
		if err := secondOp.Reweight(sp); err != nil {
			t.Fatal(err)
		}
		if err := second.Retarget(secondOp); err != nil {
			t.Fatal(err)
		}
	}
	state := NewBetaReoptState(cfg, base.Sum(), second)
	if n := len(firstRes.BetaEvents); n > 0 {
		last := firstRes.BetaEvents[n-1]
		state.BaseSum, state.LastReopt = last.Sum, last.Round
	}
	gotEvents := append([]BetaEvent(nil), firstRes.BetaEvents...)
	deltas := make([]int64, f.n)
	for second.Round() < rounds {
		second.Step()
		round := second.Round()
		sp, changed, err := applier.SpeedsAt(round)
		if err != nil {
			t.Fatal(err)
		}
		if changed > 0 {
			if err := secondOp.Reweight(sp); err != nil {
				t.Fatal(err)
			}
			if err := second.Retarget(secondOp); err != nil {
				t.Fatal(err)
			}
		}
		ev, err := state.Step(round, secondOp)
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil {
			gotEvents = append(gotEvents, *ev)
		}
		for i := range deltas {
			deltas[i] = 0
		}
		if mut.Deltas(round, workload.IntLoads(second.LoadsInt()), deltas) {
			if err := second.Inject(deltas); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !reflect.DeepEqual(gotEvents, refRes.BetaEvents) {
		t.Fatalf("resumed β events %v differ from uninterrupted %v", gotEvents, refRes.BetaEvents)
	}
	if second.Beta() != ref.Beta() {
		t.Fatalf("resumed final β %g, uninterrupted %g", second.Beta(), ref.Beta())
	}
	for i, v := range ref.LoadsInt() {
		if second.LoadsInt()[i] != v {
			t.Fatalf("resumed β-reopt run diverged at node %d: %d vs %d", i, second.LoadsInt()[i], v)
		}
	}
}

// TestRunnerBetaReoptRequiresBetaSetter mirrors the other capability checks.
func TestRunnerBetaReoptRequiresBetaSetter(t *testing.T) {
	f := newScenarioFixture(t, 4)
	proc, err := core.NewDiscrete(core.Config{Op: f.operator(t), Kind: core.FOS}, nil, 1, f.x0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Runner{Proc: noSetBeta{proc}, BetaReopt: &BetaReopt{}}).Run(3); err == nil {
		t.Error("Runner should reject BetaReopt on a process without SetBeta")
	}
}

// noSetBeta hides the SetBeta method of an embedded process.
type noSetBeta struct{ *core.Discrete }

func (n noSetBeta) SetBeta() {} // different arity: does not satisfy core.BetaSetter

// TestCheckpointCarriesBeta: a checkpoint taken after a β re-opt restores
// the re-optimized β, not the constructor's.
func TestCheckpointCarriesBeta(t *testing.T) {
	f := newScenarioFixture(t, 4)
	op := f.operator(t)
	proc, err := core.NewDiscrete(core.Config{Op: op, Kind: core.SOS, Beta: 1.8}, nil, 1, f.x0)
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.SetBeta(1.5); err != nil {
		t.Fatal(err)
	}
	cp := proc.Checkpoint()
	other, err := core.NewDiscrete(core.Config{Op: op, Kind: core.SOS, Beta: 1.8}, nil, 1, f.x0)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if other.Beta() != 1.5 {
		t.Errorf("restored beta %g, want the re-optimized 1.5", other.Beta())
	}
}

// BenchmarkBetaReopt measures the cost of one β re-optimization event: the
// in-place reweight plus the (cache-invalidated) power iteration and the
// engine SetBeta — the price the policy pays per qualifying speed event.
func BenchmarkBetaReopt(b *testing.B) {
	g, err := graph.Torus2D(32, 32)
	if err != nil {
		b.Fatal(err)
	}
	n := g.NumNodes()
	spA, err := hetero.TwoClass(n, 0.25, 4, 7)
	if err != nil {
		b.Fatal(err)
	}
	spB, err := hetero.TwoClass(n, 0.25, 2, 7)
	if err != nil {
		b.Fatal(err)
	}
	op, err := spectral.NewOperator(g, spA, nil)
	if err != nil {
		b.Fatal(err)
	}
	x0 := make([]int64, n)
	proc, err := core.NewDiscrete(core.Config{Op: op, Kind: core.SOS, Beta: 1.8}, nil, 1, x0)
	if err != nil {
		b.Fatal(err)
	}
	opts := spectral.PowerOptions{Tol: 1e-8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := spA
		if i%2 == 1 {
			sp = spB // alternate so every Reweight really moves the spectrum
		}
		if err := op.Reweight(sp); err != nil {
			b.Fatal(err)
		}
		lam, _, err := op.SecondEigenvalue(opts)
		if err != nil {
			b.Fatal(err)
		}
		beta, err := spectral.BetaOpt(lam)
		if err != nil {
			b.Fatal(err)
		}
		if err := proc.SetBeta(beta); err != nil {
			b.Fatal(err)
		}
		_ = math.Abs(beta)
	}
}
