package sim

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"diffusionlb/internal/core"
	"diffusionlb/internal/graph"
	"diffusionlb/internal/metrics"
	"diffusionlb/internal/spectral"
)

func discreteProc(t *testing.T, w, h int, kind core.Kind, beta float64) *core.Discrete {
	t.Helper()
	g, err := graph.Torus2D(w, h)
	if err != nil {
		t.Fatal(err)
	}
	op, err := spectral.NewOperator(g, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	x0, err := metrics.PointLoad(g.NumNodes(), int64(g.NumNodes())*100, 0)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := core.NewDiscrete(core.Config{Op: op, Kind: kind, Beta: beta}, nil, 7, x0)
	if err != nil {
		t.Fatal(err)
	}
	return proc
}

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("a", "b")
	if err := s.Append(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(5, 3, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(10, 5, 6); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Round(1) != 5 {
		t.Fatalf("series shape wrong: len=%d", s.Len())
	}
	col, err := s.Column("b")
	if err != nil {
		t.Fatal(err)
	}
	if col[0] != 2 || col[2] != 6 {
		t.Errorf("column b = %v", col)
	}
	last, err := s.Last("a")
	if err != nil || last != 5 {
		t.Errorf("Last(a) = %g, %v", last, err)
	}
	mn, err := s.MinOf("a")
	if err != nil || mn != 1 {
		t.Errorf("MinOf(a) = %g, %v", mn, err)
	}
	if _, err := s.Column("missing"); err == nil {
		t.Error("missing column must error")
	}
	if err := s.Append(11, 1); err == nil {
		t.Error("wrong arity must error")
	}
}

func TestSeriesCSV(t *testing.T) {
	s := NewSeries("x")
	_ = s.Append(0, 1.5)
	_ = s.Append(1, 2)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "round,x\n0,1.5\n1,2\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestSeriesTableDownsamples(t *testing.T) {
	s := NewSeries("v")
	for i := 0; i <= 100; i++ {
		_ = s.Append(i, float64(i))
	}
	var buf bytes.Buffer
	if err := s.WriteTable(&buf, 11); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 12 { // header + 11 rows
		t.Errorf("table has %d lines, want 12:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "round") || !strings.Contains(lines[0], "v") {
		t.Errorf("header missing: %q", lines[0])
	}
	// First and last rounds must be present.
	if !strings.Contains(lines[1], "0") || !strings.Contains(lines[len(lines)-1], "100") {
		t.Error("table must include first and last rows")
	}
}

func TestRunnerRecordsAndConverges(t *testing.T) {
	proc := discreteProc(t, 8, 8, core.SOS, 1.8)
	r := &Runner{Proc: proc, Every: 10}
	res, err := r.Run(400)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 400 || res.SwitchRound != -1 {
		t.Fatalf("result = %+v", res)
	}
	// Recorded at round 0, every 10, and final round: 42 rows.
	if res.Series.Len() != 41 {
		t.Errorf("recorded %d rows, want 41", res.Series.Len())
	}
	first, err := res.Series.Column("max_minus_avg")
	if err != nil {
		t.Fatal(err)
	}
	if first[0] <= first[len(first)-1] {
		t.Errorf("max-avg should decrease: %g -> %g", first[0], first[len(first)-1])
	}
	// Potential must decrease massively on a converging run.
	pot, err := res.Series.Column("potential_per_n")
	if err != nil {
		t.Fatal(err)
	}
	if pot[len(pot)-1] > pot[0]/1000 {
		t.Errorf("potential barely dropped: %g -> %g", pot[0], pot[len(pot)-1])
	}
}

func TestRunnerHybridPolicy(t *testing.T) {
	proc := discreteProc(t, 8, 8, core.SOS, 1.8)
	r := &Runner{
		Proc:    proc,
		Metrics: []Metric{MaxMinusAvg(), MaxLocalDiff()},
		Policy:  core.SwitchAtRound{Round: 50},
	}
	res, err := r.Run(120)
	if err != nil {
		t.Fatal(err)
	}
	if res.SwitchRound != 50 {
		t.Errorf("switch at %d, want 50", res.SwitchRound)
	}
	if proc.Kind() != core.FOS {
		t.Error("process should have switched to FOS")
	}
}

func TestRunnerLockstepDeviation(t *testing.T) {
	// Discrete vs continuous deviation stays bounded and finite.
	g, err := graph.Torus2D(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	op, err := spectral.NewOperator(g, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	x0, err := metrics.PointLoad(36, 36*100, 0)
	if err != nil {
		t.Fatal(err)
	}
	x0f := make([]float64, 36)
	for i, v := range x0 {
		x0f[i] = float64(v)
	}
	cfg := core.Config{Op: op, Kind: core.SOS, Beta: 1.7}
	disc, err := core.NewDiscrete(cfg, nil, 3, x0)
	if err != nil {
		t.Fatal(err)
	}
	cont, err := core.NewContinuous(cfg, x0f)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{
		Proc:     disc,
		Metrics:  []Metric{DeviationFrom(cont, "deviation_inf")},
		Lockstep: []core.Process{cont},
	}
	res, err := r.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := res.Series.Column("deviation_inf")
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range dev {
		if math.IsNaN(v) || v < 0 {
			t.Fatalf("bad deviation at row %d: %g", i, v)
		}
	}
	final := dev[len(dev)-1]
	if final > 50 {
		t.Errorf("deviation %g suspiciously large for a 6x6 torus", final)
	}
}

func TestRunnerOnRoundHook(t *testing.T) {
	proc := discreteProc(t, 4, 4, core.FOS, 0)
	calls := 0
	r := &Runner{
		Proc:    proc,
		Metrics: []Metric{TotalLoad()},
		OnRound: func(round int, p core.Process) { calls++ },
	}
	if _, err := r.Run(17); err != nil {
		t.Fatal(err)
	}
	if calls != 17 {
		t.Errorf("OnRound called %d times, want 17", calls)
	}
}

func TestRunnerValidation(t *testing.T) {
	if _, err := (&Runner{}).Run(10); err == nil {
		t.Error("nil process must error")
	}
	proc := discreteProc(t, 4, 4, core.FOS, 0)
	if _, err := (&Runner{Proc: proc}).Run(-1); err == nil {
		t.Error("negative rounds must error")
	}
}

func TestTokensMovedMetric(t *testing.T) {
	proc := discreteProc(t, 6, 6, core.FOS, 0)
	m := TokensMoved()
	if got := m.Compute(proc); got != 0 {
		t.Errorf("token_hops before any round = %g, want 0", got)
	}
	proc.Step()
	if got := m.Compute(proc); got <= 0 {
		t.Errorf("token_hops after a round from a point load = %g, want > 0", got)
	}
	// Processes without traffic accounting report 0.
	g, err := graph.Cycle(8)
	if err != nil {
		t.Fatal(err)
	}
	op, err := spectral.NewOperator(g, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cont, err := core.NewContinuous(core.Config{Op: op, Kind: core.FOS}, make([]float64, 8))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Compute(cont); got != 0 {
		t.Errorf("continuous process token_hops = %g, want 0 (no accounting)", got)
	}
}

func TestMetricsSuiteOnBothViews(t *testing.T) {
	// Each standard metric must work on discrete (Int view) and continuous
	// (Float view) processes.
	g, err := graph.Torus2D(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	op, err := spectral.NewOperator(g, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	x0 := make([]int64, 16)
	x0[0] = 1600
	x0f := make([]float64, 16)
	x0f[0] = 1600
	cfg := core.Config{Op: op, Kind: core.FOS}
	disc, err := core.NewDiscrete(cfg, nil, 1, x0)
	if err != nil {
		t.Fatal(err)
	}
	cont, err := core.NewContinuous(cfg, x0f)
	if err != nil {
		t.Fatal(err)
	}
	all := []Metric{MaxMinusAvg(), MaxLocalDiff(), PotentialPerN(), Discrepancy(),
		MinLoad(), MinTransient(), TotalLoad(), HeteroMaxMinusTarget()}
	for _, p := range []core.Process{disc, cont} {
		p.Step()
		for _, m := range all {
			v := m.Compute(p)
			if math.IsNaN(v) {
				t.Errorf("metric %s returned NaN", m.Name())
			}
		}
	}
	// Cross-check: discrete and continuous agree approximately after one
	// deterministic-ish round from the same start.
	dTot := TotalLoad().Compute(disc)
	cTot := TotalLoad().Compute(cont)
	if math.Abs(dTot-cTot) > 1e-6 {
		t.Errorf("totals diverged: %g vs %g", dTot, cTot)
	}
}
