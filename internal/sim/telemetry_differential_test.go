package sim_test

import (
	"math"
	"reflect"
	"testing"

	"diffusionlb/internal/actor"
	"diffusionlb/internal/core"
	"diffusionlb/internal/envdyn"
	"diffusionlb/internal/graph"
	"diffusionlb/internal/hetero"
	"diffusionlb/internal/sim"
	"diffusionlb/internal/spectral"
	"diffusionlb/internal/telemetry"
	"diffusionlb/internal/workload"
)

// TestTelemetryDifferentialDeterminism pins the telemetry layer's core
// contract: a run with live probes attached is bit-identical to the same
// run with telemetry.Nop — loads, flows, the recorded Series and every
// event history — for both the shared-memory engine and the actor:4
// runtime, across the full golden dynamics timeline (inject@10,
// reweight@20, SetBeta@30, kind-flip@40, plus a β re-opt triggered by the
// speed event).
func TestTelemetryDifferentialDeterminism(t *testing.T) {
	for _, runtime := range []string{"discrete", "actor:4"} {
		t.Run(runtime, func(t *testing.T) {
			off := runTimeline(t, runtime, nil, nil)
			reg := telemetry.NewRegistry()
			tr := telemetry.NewTrace(4096)
			on := runTimeline(t, runtime, reg, tr)

			// Trajectory state, bitwise.
			eqI64(t, "loads", on.loads, off.loads)
			eqI64(t, "flows", on.flows, off.flows)
			eqF64Bits(t, "scheduled flows", on.scheduled, off.scheduled)

			// Recorded series, bitwise.
			sOn, sOff := on.res.Series, off.res.Series
			if !reflect.DeepEqual(sOn.Names(), sOff.Names()) {
				t.Fatalf("series columns %v vs %v", sOn.Names(), sOff.Names())
			}
			if sOn.Len() != sOff.Len() {
				t.Fatalf("series length %d vs %d", sOn.Len(), sOff.Len())
			}
			for i := 0; i < sOn.Len(); i++ {
				if sOn.Round(i) != sOff.Round(i) {
					t.Fatalf("row %d round %d vs %d", i, sOn.Round(i), sOff.Round(i))
				}
				eqF64Bits(t, "series row", sOn.Row(i), sOff.Row(i))
			}

			// Event histories.
			if !reflect.DeepEqual(on.res.Switches, off.res.Switches) {
				t.Errorf("switches %v vs %v", on.res.Switches, off.res.Switches)
			}
			if !reflect.DeepEqual(on.res.SpeedEvents, off.res.SpeedEvents) {
				t.Errorf("speed events %v vs %v", on.res.SpeedEvents, off.res.SpeedEvents)
			}
			if !reflect.DeepEqual(on.res.BetaEvents, off.res.BetaEvents) {
				t.Errorf("beta events %v vs %v", on.res.BetaEvents, off.res.BetaEvents)
			}
			if on.res.StaleBetaRounds != off.res.StaleBetaRounds {
				t.Errorf("stale beta rounds %d vs %d", on.res.StaleBetaRounds, off.res.StaleBetaRounds)
			}

			// The telemetry-on run must actually have observed the timeline:
			// round, inject, reweight, β re-opt and switch events all present.
			kinds := map[telemetry.EventKind]int{}
			for _, e := range tr.Events() {
				kinds[e.Kind]++
			}
			for _, want := range []telemetry.EventKind{
				telemetry.EvRound, telemetry.EvInject, telemetry.EvReweight,
				telemetry.EvBetaReopt, telemetry.EvSwitch,
			} {
				if kinds[want] == 0 {
					t.Errorf("telemetry-on run recorded no %v events (got %v)", want, kinds)
				}
			}
			if runtime == "actor:4" {
				var snap = telemetry.TakeSnapshot(reg, nil)
				var sent float64
				for _, c := range snap.Counters {
					if c.Name == "diffusionlb_actor_messages_sent_total" {
						sent = c.Value
					}
				}
				if sent == 0 {
					t.Error("actor runtime recorded no boundary messages")
				}
			}
		})
	}
}

// timelineResult is everything a differential comparison needs from one run.
type timelineResult struct {
	res       *sim.Result
	loads     []int64
	flows     []int64
	scheduled []float64
}

// runTimeline builds a fresh system and drives the golden dynamics
// timeline through a sim.Runner, with or without telemetry attached.
func runTimeline(t *testing.T, runtime string, reg *telemetry.Registry, tr *telemetry.Trace) timelineResult {
	t.Helper()
	const (
		seed   = 42
		rounds = 60
	)
	g, err := graph.Torus2D(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	s := make([]float64, n)
	for i := range s {
		s[i] = 1 + float64(i%5)*0.5
	}
	sp, err := hetero.New(s)
	if err != nil {
		t.Fatal(err)
	}
	op, err := spectral.NewOperator(g, sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	x0 := make([]int64, n)
	for i := range x0 {
		x0[i] = int64((i * i) % 97)
	}

	var proc core.Process
	switch runtime {
	case "discrete":
		proc, err = core.NewDiscrete(core.Config{Op: op, Kind: core.SOS, Beta: 1.7, Workers: 2}, nil, seed, x0)
	default:
		opts, aErr := actor.FromSpec(runtime)
		if aErr != nil {
			t.Fatal(aErr)
		}
		var rt *actor.Runtime
		rt, err = actor.New(op, core.SOS, 1.7, nil, seed, x0, opts)
		if rt != nil {
			rt.SetTelemetry(telemetry.NewActorProbe(reg, tr, opts.Actors, true))
		}
		proc = rt
	}
	if err != nil {
		t.Fatal(err)
	}

	wl, err := workload.FromSpec("burst:10:5000", n, seed)
	if err != nil {
		t.Fatal(err)
	}
	env, err := envdyn.FromSpec("throttle:at=20,frac=0.25,factor=0.5", n, seed)
	if err != nil {
		t.Fatal(err)
	}
	policy, err := core.PolicyFromSpec("at:40")
	if err != nil {
		t.Fatal(err)
	}
	runner := &sim.Runner{
		Proc:        proc,
		Metrics:     append(sim.DefaultMetrics(), sim.DynamicMetrics()...),
		Workload:    wl,
		Environment: env,
		Adaptive:    policy,
		BetaReopt:   &sim.BetaReopt{Threshold: 0.01},
		OnRound: func(round int, p core.Process) {
			if round == 30 {
				if err := p.(core.BetaSetter).SetBeta(1.5); err != nil {
					t.Fatal(err)
				}
			}
		},
		Telemetry: func() *telemetry.RunProbe {
			if reg == nil && tr == nil {
				return nil
			}
			return telemetry.NewRunProbe(reg, tr)
		}(),
	}
	res, err := runner.Run(rounds)
	if err != nil {
		t.Fatal(err)
	}
	out := timelineResult{res: res}
	out.loads = append(out.loads, proc.Loads().Int...)
	switch p := proc.(type) {
	case *core.Discrete:
		out.flows = append(out.flows, p.Flows()...)
		out.scheduled = append(out.scheduled, p.ScheduledFlows()...)
	case *actor.Runtime:
		out.flows = append(out.flows, p.Flows()...)
		out.scheduled = append(out.scheduled, p.ScheduledFlows()...)
	}
	return out
}

func eqI64(t *testing.T, what string, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d] = %d with telemetry, %d without", what, i, got[i], want[i])
		}
	}
}

func eqF64Bits(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d] = %g with telemetry, %g without", what, i, got[i], want[i])
		}
	}
}
