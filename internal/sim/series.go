// Package sim drives balancing processes for many rounds while recording
// the paper's quality metrics, and renders the recorded series as CSV or
// aligned text tables. It is the harness behind every figure
// reproduction: a Runner owns a core.Process, samples a configurable set of
// metrics at a configurable cadence, and optionally applies a hybrid
// SOS→FOS switch policy mid-run (Section VI-A).
package sim

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Series is a recorded table of per-round metric values.
type Series struct {
	names  []string
	rounds []int
	values [][]float64 // values[i] is the row recorded at rounds[i]
}

// NewSeries creates an empty series with the given column names.
func NewSeries(names ...string) *Series {
	cp := make([]string, len(names))
	copy(cp, names)
	return &Series{names: cp}
}

// Names returns the column names.
func (s *Series) Names() []string { return s.names }

// Len returns the number of recorded rows.
func (s *Series) Len() int { return len(s.rounds) }

// Append records a row. The number of values must match the column count.
func (s *Series) Append(round int, vals ...float64) error {
	if len(vals) != len(s.names) {
		return fmt.Errorf("sim: row has %d values for %d columns", len(vals), len(s.names))
	}
	cp := make([]float64, len(vals))
	copy(cp, vals)
	s.rounds = append(s.rounds, round)
	s.values = append(s.values, cp)
	return nil
}

// Round returns the round number of row i.
func (s *Series) Round(i int) int { return s.rounds[i] }

// Row returns the values of row i (read-only view).
func (s *Series) Row(i int) []float64 { return s.values[i] }

// Column extracts one column by name.
func (s *Series) Column(name string) ([]float64, error) {
	idx := -1
	for i, n := range s.names {
		if n == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("sim: no column %q (have %v)", name, s.names)
	}
	out := make([]float64, len(s.values))
	for i, row := range s.values {
		out[i] = row[idx]
	}
	return out, nil
}

// Last returns the final recorded value of the named column.
func (s *Series) Last(name string) (float64, error) {
	col, err := s.Column(name)
	if err != nil {
		return 0, err
	}
	if len(col) == 0 {
		return 0, fmt.Errorf("sim: column %q is empty", name)
	}
	return col[len(col)-1], nil
}

// MinOf returns the smallest recorded value of the named column.
func (s *Series) MinOf(name string) (float64, error) {
	col, err := s.Column(name)
	if err != nil {
		return 0, err
	}
	if len(col) == 0 {
		return 0, fmt.Errorf("sim: column %q is empty", name)
	}
	mn := col[0]
	for _, v := range col[1:] {
		if v < mn {
			mn = v
		}
	}
	return mn, nil
}

// WriteCSV writes the series with a "round" leading column.
func (s *Series) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("round")
	for _, n := range s.names {
		b.WriteByte(',')
		b.WriteString(n)
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for i, row := range s.values {
		b.Reset()
		b.WriteString(strconv.Itoa(s.rounds[i]))
		for _, v := range row {
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(v, 'g', 10, 64))
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteTable writes an aligned text table, downsampled to at most maxRows
// evenly spaced rows (maxRows <= 0 means all rows). This is the "same rows
// the paper plots" view used by the experiment harness.
func (s *Series) WriteTable(w io.Writer, maxRows int) error {
	idx := make([]int, 0, len(s.rounds))
	if maxRows <= 0 || len(s.rounds) <= maxRows {
		for i := range s.rounds {
			idx = append(idx, i)
		}
	} else {
		step := float64(len(s.rounds)-1) / float64(maxRows-1)
		prev := -1
		for k := 0; k < maxRows; k++ {
			i := int(float64(k)*step + 0.5)
			if i >= len(s.rounds) {
				i = len(s.rounds) - 1
			}
			if i != prev {
				idx = append(idx, i)
				prev = i
			}
		}
	}
	headers := append([]string{"round"}, s.names...)
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	rows := make([][]string, 0, len(idx))
	for _, i := range idx {
		row := make([]string, 0, len(headers))
		row = append(row, strconv.Itoa(s.rounds[i]))
		for _, v := range s.values[i] {
			row = append(row, formatMetric(v))
		}
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
		rows = append(rows, row)
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for c, cell := range cells {
			if c > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat(" ", widths[c]-len(cell)))
			b.WriteString(cell)
		}
		b.WriteByte('\n')
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := writeRow(headers); err != nil {
		return err
	}
	for _, row := range rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// formatMetric renders a metric value compactly: integers exactly, large or
// tiny magnitudes in scientific notation.
func formatMetric(v float64) string {
	//lint:allow floateq integer-representability test is exact by construction
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	av := v
	if av < 0 {
		av = -av
	}
	if av >= 1e6 || (av > 0 && av < 1e-3) {
		return strconv.FormatFloat(v, 'e', 3, 64)
	}
	return strconv.FormatFloat(v, 'f', 4, 64)
}
