package sim

import (
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"

	"diffusionlb/internal/core"
	"diffusionlb/internal/graph"
	"diffusionlb/internal/spectral"
	"diffusionlb/internal/workload"
)

// TestMinTransientRoundZeroReportsMinLoad is the regression test for the
// sentinel mapping bug: before the first round MinTransient() is +Inf and
// the metric used to record 0, which made the round-0 row of a
// negative-load plot indistinguishable from a true minimum transient of
// zero. It must report the current minimum load instead.
func TestMinTransientRoundZeroReportsMinLoad(t *testing.T) {
	// Point load: node 0 holds everything, the rest hold 0 — except we
	// shift everything up so the minimum is clearly non-zero.
	g, err := graph.Torus2D(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	op, err := spectral.NewOperator(g, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	x0 := make([]int64, 16)
	for i := range x0 {
		x0[i] = 25
	}
	x0[0] = 1600
	proc, err := core.NewDiscrete(core.Config{Op: op, Kind: core.FOS}, nil, 1, x0)
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{Proc: proc, Metrics: []Metric{MinTransient()}}
	res, err := runner.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	col, err := res.Series.Column("min_transient")
	if err != nil {
		t.Fatal(err)
	}
	if res.Series.Round(0) != 0 {
		t.Fatalf("first row is round %d, want 0", res.Series.Round(0))
	}
	if col[0] != 25 {
		t.Errorf("round-0 min_transient = %g, want the current minimum load 25", col[0])
	}
	// Later rows report the true running minimum, which can only be ≤ the
	// round-0 minimum load.
	for i := 1; i < len(col); i++ {
		if col[i] > col[0] {
			t.Errorf("row %d: running minimum %g exceeds round-0 value %g", i, col[i], col[0])
		}
	}
}

func balancedDiscrete(t *testing.T, side int, kind core.Kind, avg int64) *core.Discrete {
	t.Helper()
	g, err := graph.Torus2D(side, side)
	if err != nil {
		t.Fatal(err)
	}
	op, err := spectral.NewOperator(g, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	x0 := make([]int64, g.NumNodes())
	for i := range x0 {
		x0[i] = avg
	}
	proc, err := core.NewDiscrete(core.Config{Op: op, Kind: kind, Beta: 1.8}, nil, 5, x0)
	if err != nil {
		t.Fatal(err)
	}
	return proc
}

// TestRunnerAppliesWorkload: a burst workload attached to the Runner must
// actually land in the process (total load grows by the burst) and the
// recovery metrics must see it.
func TestRunnerAppliesWorkload(t *testing.T) {
	proc := balancedDiscrete(t, 8, core.SOS, 100)
	wl, err := workload.FromSpec("burst:10:6400:0", proc.Operator().Graph().NumNodes(), 3)
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{
		Proc:     proc,
		Workload: wl,
		Metrics:  []Metric{Discrepancy(), PeakDiscrepancy(), TotalLoad(), InjectedLoad()},
	}
	res, err := runner.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	total, err := res.Series.Last("total_load")
	if err != nil {
		t.Fatal(err)
	}
	if total != 64*100+6400 {
		t.Errorf("final total load %g, want %d", total, 64*100+6400)
	}
	inj, err := res.Series.Last("injected_load")
	if err != nil {
		t.Fatal(err)
	}
	if inj != 6400 {
		t.Errorf("injected_load = %g, want 6400", inj)
	}
	// Peak discrepancy must remember the burst even after recovery.
	peak, err := res.Series.Last("peak_discrepancy")
	if err != nil {
		t.Fatal(err)
	}
	final, err := res.Series.Last("discrepancy")
	if err != nil {
		t.Fatal(err)
	}
	if peak < 6000 {
		t.Errorf("peak_discrepancy = %g, want ≥ 6000 (the burst)", peak)
	}
	if final >= peak {
		t.Errorf("discrepancy %g did not recover below the peak %g", final, peak)
	}
	// Rounds-to-recover: after the burst the scheme must get back under a
	// small threshold within the run.
	rec, err := RoundsToRecover(res.Series, "discrepancy", 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if rec < 0 {
		t.Error("SOS never recovered from the burst within 60 rounds")
	}
	// An unknown column surfaces an error, never a silent -1.
	if _, err := RoundsToRecover(res.Series, "nope", 0, 1); err == nil {
		t.Error("RoundsToRecover should reject unknown columns")
	}
}

// TestRunnerEveryWithWorkload: with Every > 1 the workload must still be
// applied every round (not only on recorded rounds), and the recorded grid
// must be identical to an Every=1 run downsampled.
func TestRunnerEveryWithWorkload(t *testing.T) {
	build := func() (*core.Discrete, workload.Mutator) {
		proc := balancedDiscrete(t, 6, core.SOS, 50)
		wl, err := workload.FromSpec("poisson:0.5+churn:5:40:40", 36, 9)
		if err != nil {
			t.Fatal(err)
		}
		return proc, wl
	}
	run := func(every int) (*Result, *core.Discrete) {
		proc, wl := build()
		runner := &Runner{Proc: proc, Workload: wl, Every: every,
			Metrics: []Metric{Discrepancy(), TotalLoad()}}
		res, err := runner.Run(40)
		if err != nil {
			t.Fatal(err)
		}
		return res, proc
	}
	resFine, procFine := run(1)
	resCoarse, procCoarse := run(7)

	// The trajectories must be identical: sampling cadence cannot change
	// the dynamics.
	for i, v := range procFine.LoadsInt() {
		if procCoarse.LoadsInt()[i] != v {
			t.Fatalf("Every=7 diverged from Every=1 at node %d: %d vs %d",
				i, procCoarse.LoadsInt()[i], v)
		}
	}
	// Every recorded coarse row matches the fine row of the same round.
	fineByRound := map[int][]float64{}
	for i := 0; i < resFine.Series.Len(); i++ {
		fineByRound[resFine.Series.Round(i)] = resFine.Series.Row(i)
	}
	for i := 0; i < resCoarse.Series.Len(); i++ {
		round := resCoarse.Series.Round(i)
		fine, ok := fineByRound[round]
		if !ok {
			t.Fatalf("coarse run recorded round %d the fine run did not", round)
		}
		for c, v := range resCoarse.Series.Row(i) {
			if fine[c] != v {
				t.Fatalf("round %d column %d: coarse %g != fine %g", round, c, v, fine[c])
			}
		}
	}
	// The final round is always recorded even when 40 % 7 != 0.
	if last := resCoarse.Series.Round(resCoarse.Series.Len() - 1); last != 40 {
		t.Fatalf("coarse run's last recorded round = %d, want 40", last)
	}
}

// TestRunnerWorkloadRequiresInjector: attaching a workload to a process
// without the Inject hook is a configuration error, not a silent no-op.
func TestRunnerWorkloadRequiresInjector(t *testing.T) {
	proc := balancedDiscrete(t, 4, core.FOS, 10)
	wl, err := workload.FromSpec("poisson:1", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{Proc: noInject{proc}, Workload: wl}
	if _, err := runner.Run(5); err == nil {
		t.Fatal("Runner should reject a workload on a process without Inject")
	}
	// A lockstep reference without Inject would silently drift instead of
	// seeing the same arrivals — also a configuration error.
	runner = &Runner{Proc: proc, Lockstep: []core.Process{noInject{proc}}, Workload: wl}
	if _, err := runner.Run(5); err == nil {
		t.Fatal("Runner should reject a workload with a non-injectable lockstep process")
	}
}

// noInject hides the Inject method of an embedded process.
type noInject struct{ *core.Discrete }

func (n noInject) Inject() {} // different arity: does not satisfy core.Injector

// TestRunnerWorkloadReachesLockstep: lockstep references implementing
// Injector receive the same deltas, so deviation metrics compare
// like-for-like trajectories under dynamic load.
func TestRunnerWorkloadReachesLockstep(t *testing.T) {
	proc := balancedDiscrete(t, 6, core.FOS, 100)
	xf := make([]float64, 36)
	for i := range xf {
		xf[i] = 100
	}
	ref, err := core.NewContinuous(core.Config{Op: proc.Operator(), Kind: core.FOS}, xf)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.FromSpec("burst:3:3600:5", 36, 1)
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{
		Proc:     proc,
		Lockstep: []core.Process{ref},
		Workload: wl,
		Metrics:  []Metric{DeviationFrom(ref, "dev")},
	}
	res, err := runner.Run(30)
	if err != nil {
		t.Fatal(err)
	}
	var refTotal float64
	for _, v := range ref.LoadsFloat() {
		refTotal += v
	}
	if math.Abs(refTotal-(3600+3600)) > 1e-6 {
		t.Errorf("lockstep reference total %g, want 7200 (burst injected)", refTotal)
	}
	// If the burst only hit one side the deviation would be ~3600; with
	// both injected it stays at rounding-scale.
	dev, err := res.Series.Last("dev")
	if err != nil {
		t.Fatal(err)
	}
	if dev > 100 {
		t.Errorf("deviation %g — burst did not reach the lockstep reference", dev)
	}
}

// TestRunnerWorkloadCheckpointResume drives the full stack: a Runner-owned
// dynamic run, interrupted by Checkpoint/Restore, continues bit-identically
// — satellite coverage for checkpoint interleaved with workload injection.
func TestRunnerWorkloadCheckpointResume(t *testing.T) {
	const rounds, cut = 80, 30
	spec, seed := "hotspot:4:500+churn:6:30:30", uint64(21)

	newProc := func() *core.Discrete { return balancedDiscrete(t, 6, core.SOS, 200) }

	// Uninterrupted reference.
	ref := newProc()
	wlRef, err := workload.FromSpec(spec, 36, seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Runner{Proc: ref, Workload: wlRef}).Run(rounds); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: stop at the cut, checkpoint, restore into a fresh
	// process and a fresh (same-seed) workload, continue manually from the
	// cut round.
	first := newProc()
	wlA, err := workload.FromSpec(spec, 36, seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Runner{Proc: first, Workload: wlA}).Run(cut); err != nil {
		t.Fatal(err)
	}
	cp := first.Checkpoint()

	second := newProc()
	if err := second.Restore(cp); err != nil {
		t.Fatal(err)
	}
	wlB, err := workload.FromSpec(spec, 36, seed)
	if err != nil {
		t.Fatal(err)
	}
	deltas := make([]int64, 36)
	for second.Round() < rounds {
		second.Step()
		for i := range deltas {
			deltas[i] = 0
		}
		if wlB.Deltas(second.Round(), workload.IntLoads(second.LoadsInt()), deltas) {
			if err := second.Inject(deltas); err != nil {
				t.Fatal(err)
			}
		}
	}

	for i, v := range ref.LoadsInt() {
		if second.LoadsInt()[i] != v {
			t.Fatalf("resumed dynamic run diverged at node %d: %d vs %d",
				i, second.LoadsInt()[i], v)
		}
	}
}

// TestAdaptivePolicySeesPostInjectionLoads pins the evaluation order: the
// workload injects before the policy decides, so a controller sees the
// burst in the same round it lands. A balanced SOS start would otherwise
// look plateaued at round 1 and switch to FOS — exactly the lag the
// re-arming design exists to avoid.
func TestAdaptivePolicySeesPostInjectionLoads(t *testing.T) {
	g, err := graph.Torus2D(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	op, err := spectral.NewOperator(g, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	x0 := make([]int64, 16)
	for i := range x0 {
		x0[i] = 100
	}
	// β near the 4x4-torus optimum so the burst drains within the run.
	proc, err := core.NewDiscrete(core.Config{Op: op, Kind: core.SOS, Beta: 1.1}, nil, 1, x0)
	if err != nil {
		t.Fatal(err)
	}
	wl := workload.NewBurst(1, 0, 100_000)
	policy, err := core.PolicyFromSpec("adaptive:16:64:0")
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Runner{Proc: proc, Workload: wl, Adaptive: policy, Every: 1}).Run(200)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range res.Switches {
		if ev.Round == 1 && ev.To == core.FOS {
			t.Fatalf("policy switched to FOS at round 1 — it decided on pre-injection loads (history %v)", res.Switches)
		}
	}
	if len(res.Switches) == 0 || res.Switches[len(res.Switches)-1].To != core.FOS {
		t.Fatalf("run should eventually plateau-switch to FOS after draining the burst; history %v", res.Switches)
	}
}

func TestRunnerRejectsPolicyAndAdaptiveTogether(t *testing.T) {
	proc := discreteProc(t, 4, 4, core.SOS, 1.8)
	r := &Runner{
		Proc:     proc,
		Policy:   core.SwitchAtRound{Round: 5},
		Adaptive: &core.HysteresisBand{Lo: 4, Hi: 64},
	}
	if _, err := r.Run(10); err == nil {
		t.Fatal("Runner must reject Policy and Adaptive set together")
	}
}

// TestSwitchHistoryDeterministicAcrossStepWorkers is the adaptive-hybrid
// acceptance criterion: Result.Switches is bit-identical for every per-step
// worker count. The 64x64 torus has exactly 4096 nodes — the parallelFor
// fan-out threshold — so Workers>1 genuinely runs the goroutine path.
func TestSwitchHistoryDeterministicAcrossStepWorkers(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	g, err := graph.Torus2D(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	op, err := spectral.NewOperator(g, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	x0 := make([]int64, n)
	for i := range x0 {
		x0[i] = 1000
	}
	run := func(workers int) *Result {
		proc, err := core.NewDiscrete(core.Config{Op: op, Kind: core.SOS, Beta: 1.9, Workers: workers},
			core.RandomizedRounder{}, 7, x0)
		if err != nil {
			t.Fatal(err)
		}
		wl, err := workload.FromSpec(fmt.Sprintf("burst:30:%d:0+churn:5:100:100", 50*n), n, 9)
		if err != nil {
			t.Fatal(err)
		}
		policy, err := core.PolicyFromSpec("adaptive:16:64:10")
		if err != nil {
			t.Fatal(err)
		}
		res, err := (&Runner{Proc: proc, Workload: wl, Adaptive: policy, Every: 1,
			Metrics: []Metric{Discrepancy()}}).Run(80)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	// The scenario must actually exercise re-arming, or the determinism
	// claim is vacuous: plateau switch to FOS, then the round-30 burst
	// re-arms SOS.
	if len(seq.Switches) < 2 || seq.Switches[1].To != core.SOS {
		t.Fatalf("scenario did not re-arm: switches %v", seq.Switches)
	}
	for _, workers := range []int{4, 8} {
		par := run(workers)
		if !reflect.DeepEqual(par.Switches, seq.Switches) {
			t.Fatalf("Workers=%d switch history %v differs from sequential %v",
				workers, par.Switches, seq.Switches)
		}
	}
}
