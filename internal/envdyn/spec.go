package envdyn

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"diffusionlb/internal/randx"
)

// ErrBadSpec reports a malformed environment spec.
var ErrBadSpec = errors.New("envdyn: invalid spec")

// FromSpec builds a Dynamics from a compact textual spec, the syntax shared
// by the lbsim CLI and the sweep engine. Unlike the positional grammars of
// the other spec families, environment components take key=value arguments
// (they have too many optional knobs for positions to stay readable):
//
//	throttle:at=R,frac=F,factor=X[,until=U][,sel=fast|slow|random]
//	    from round R on, the selected F·n nodes run at X times their base
//	    speed (X in (0, 1]); until=U restores them at round U
//	throttle:every=P,dur=D,frac=F,factor=X[,sel=...]
//	    recurring: active during the first D rounds of every P-round period
//	boost:...
//	    same keys as throttle with factor >= 1 (speed-up events)
//	drain:at=R,frac=F[,ramp=T][,restore=R2[,rramp=T2]][,sel=...]
//	    ramp the selected nodes' speed to the floor of 1 over T rounds from
//	    round R (a leave proxy); restore=R2 ramps back up over T2 rounds (a
//	    join proxy)
//	jitter:sigma=S[,cap=C][,frac=F][,sel=...]
//	    bounded random-walk speed drift exp(S·w_i(t)), multiplier clamped
//	    to [1/C, C] (default C=4); default selection is every node
//
// Parts joined with "+" compose multiplicatively, and "compose(...)" is an
// accepted wrapper around a "+"-joined list:
// "throttle:at=100,frac=0.25,factor=0.25+jitter:sigma=0.05". The empty spec
// means a static environment and returns (nil, nil). n is the node count
// (must be positive); seed is the master seed the selection and jitter
// streams derive from, with each composed part salted by its position.
//
// The selection fraction resolves to max(1, round(F·n)) nodes; sel=fast
// (the default for throttle/boost/drain) targets the highest base speeds
// with ties broken toward the lowest index.
func FromSpec(spec string, n int, seed uint64) (Dynamics, error) {
	if spec == "" {
		return nil, nil
	}
	if n <= 0 {
		return nil, fmt.Errorf("%w: %d nodes", ErrBadSpec, n)
	}
	if inner, ok := strings.CutPrefix(spec, "compose("); ok {
		body, ok := strings.CutSuffix(inner, ")")
		if !ok || body == "" {
			return nil, fmt.Errorf("%w: %q: unterminated or empty compose(...)", ErrBadSpec, spec)
		}
		spec = body
	}
	parts := strings.Split(spec, "+")
	dyns := make(Compose, 0, len(parts))
	for pi, part := range parts {
		d, err := fromOneSpec(part, randx.Mix(seed, uint64(pi)))
		if err != nil {
			return nil, err
		}
		dyns = append(dyns, d)
	}
	if len(dyns) == 1 {
		return dyns[0], nil
	}
	return dyns, nil
}

// ValidateSpec reports whether spec parses, without needing the real node
// count (sweep validation runs before graphs are built).
func ValidateSpec(spec string) error {
	_, err := FromSpec(spec, 1<<31-1, 0)
	return err
}

// kvArgs parses the comma-separated key=value argument list of one
// component, rejecting duplicate, unknown and malformed keys.
type kvArgs struct {
	part string
	m    map[string]string
}

func parseKV(part, args string, allowed []string) (*kvArgs, error) {
	kv := &kvArgs{part: part, m: map[string]string{}}
	if args == "" {
		return kv, nil
	}
	ok := func(key string) bool {
		for _, a := range allowed {
			if a == key {
				return true
			}
		}
		return false
	}
	for _, f := range strings.Split(args, ",") {
		k, v, found := strings.Cut(f, "=")
		if !found || k == "" || v == "" {
			return nil, kv.bad(fmt.Sprintf("argument %q is not key=value", f))
		}
		if !ok(k) {
			return nil, kv.bad(fmt.Sprintf("unknown key %q (valid: %s)", k, strings.Join(allowed, ", ")))
		}
		if _, dup := kv.m[k]; dup {
			return nil, kv.bad(fmt.Sprintf("duplicate key %q", k))
		}
		kv.m[k] = v
	}
	return kv, nil
}

func (kv *kvArgs) bad(msg string) error {
	return fmt.Errorf("%w: %q: %s", ErrBadSpec, kv.part, msg)
}

func (kv *kvArgs) has(key string) bool { _, ok := kv.m[key]; return ok }

func (kv *kvArgs) intVal(key string, def int) (int, error) {
	v, ok := kv.m[key]
	if !ok {
		return def, nil
	}
	i, err := strconv.Atoi(v)
	if err != nil {
		return 0, kv.bad(fmt.Sprintf("%s=%q: not an integer", key, v))
	}
	return i, nil
}

func (kv *kvArgs) floatVal(key string, def float64) (float64, error) {
	v, ok := kv.m[key]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, kv.bad(fmt.Sprintf("%s=%q: not a finite number", key, v))
	}
	return f, nil
}

func (kv *kvArgs) selVal(def string) (string, error) {
	v, ok := kv.m["sel"]
	if !ok {
		return def, nil
	}
	switch v {
	case SelFast, SelSlow, SelRandom:
		return v, nil
	}
	return "", kv.bad(fmt.Sprintf("sel=%q (fast|slow|random)", v))
}

// require errors unless the key was present in the input.
func (kv *kvArgs) require(keys ...string) error {
	for _, k := range keys {
		if !kv.has(k) {
			return kv.bad(fmt.Sprintf("missing required key %q", k))
		}
	}
	return nil
}

// fromOneSpec parses a single "+"-free component.
func fromOneSpec(part string, seed uint64) (Dynamics, error) {
	kind, args, _ := strings.Cut(part, ":")
	bad := func(msg string) error {
		return fmt.Errorf("%w: %q: %s", ErrBadSpec, part, msg)
	}
	switch kind {
	case "throttle", "boost":
		kv, err := parseKV(part, args, []string{"at", "until", "every", "dur", "frac", "factor", "sel"})
		if err != nil {
			return nil, err
		}
		if err := kv.require("frac", "factor"); err != nil {
			return nil, err
		}
		t := &Throttle{Boost: kind == "boost", Seed: seed}
		if t.At, err = kv.intVal("at", 0); err != nil {
			return nil, err
		}
		if t.Until, err = kv.intVal("until", 0); err != nil {
			return nil, err
		}
		if t.Every, err = kv.intVal("every", 0); err != nil {
			return nil, err
		}
		if t.Dur, err = kv.intVal("dur", 0); err != nil {
			return nil, err
		}
		if t.Frac, err = kv.floatVal("frac", 0); err != nil {
			return nil, err
		}
		if t.Factor, err = kv.floatVal("factor", 0); err != nil {
			return nil, err
		}
		if t.Sel, err = kv.selVal(SelFast); err != nil {
			return nil, err
		}
		switch {
		case kv.has("at") && kv.has("every"):
			return nil, bad("set either at=... (one-shot) or every=...,dur=... (recurring), not both")
		case kv.has("every"):
			if t.Every < 1 {
				return nil, bad("every must be >= 1")
			}
			if !kv.has("dur") || t.Dur < 1 || t.Dur > t.Every {
				return nil, bad("recurring mode needs dur in [1, every]")
			}
			if kv.has("until") {
				return nil, bad("until only applies to one-shot mode")
			}
		case kv.has("at"):
			if t.At < 1 {
				return nil, bad("at must be >= 1")
			}
			if kv.has("dur") {
				return nil, bad("dur only applies to recurring mode")
			}
			if t.Until != 0 && t.Until <= t.At {
				return nil, bad("until must exceed at")
			}
		default:
			return nil, bad("missing schedule: at=... or every=...,dur=...")
		}
		if t.Frac <= 0 || t.Frac > 1 {
			return nil, bad("frac must be in (0, 1]")
		}
		if t.Factor <= 0 {
			return nil, bad("factor must be > 0")
		}
		if kind == "throttle" && t.Factor > 1 {
			return nil, bad("throttle factor must be <= 1 (use boost for speed-ups)")
		}
		if kind == "boost" && t.Factor < 1 {
			return nil, bad("boost factor must be >= 1 (use throttle for slow-downs)")
		}
		return t, nil

	case "drain":
		kv, err := parseKV(part, args, []string{"at", "ramp", "restore", "rramp", "frac", "sel"})
		if err != nil {
			return nil, err
		}
		if err := kv.require("at", "frac"); err != nil {
			return nil, err
		}
		d := &Drain{Seed: seed}
		if d.At, err = kv.intVal("at", 0); err != nil {
			return nil, err
		}
		if d.Ramp, err = kv.intVal("ramp", 1); err != nil {
			return nil, err
		}
		if d.Restore, err = kv.intVal("restore", 0); err != nil {
			return nil, err
		}
		if d.RestoreRamp, err = kv.intVal("rramp", 1); err != nil {
			return nil, err
		}
		if d.Frac, err = kv.floatVal("frac", 0); err != nil {
			return nil, err
		}
		if d.Sel, err = kv.selVal(SelFast); err != nil {
			return nil, err
		}
		if d.At < 1 {
			return nil, bad("at must be >= 1")
		}
		if d.Ramp < 1 {
			return nil, bad("ramp must be >= 1")
		}
		if d.Frac <= 0 || d.Frac > 1 {
			return nil, bad("frac must be in (0, 1]")
		}
		if kv.has("rramp") && !kv.has("restore") {
			return nil, bad("rramp needs restore")
		}
		if kv.has("restore") {
			if d.Restore < d.At+d.Ramp {
				return nil, bad("restore must be >= at+ramp (drain completes first)")
			}
			if d.RestoreRamp < 1 {
				return nil, bad("rramp must be >= 1")
			}
		}
		return d, nil

	case "jitter":
		kv, err := parseKV(part, args, []string{"sigma", "cap", "frac", "sel"})
		if err != nil {
			return nil, err
		}
		if err := kv.require("sigma"); err != nil {
			return nil, err
		}
		j := &Jitter{Seed: seed}
		if j.Sigma, err = kv.floatVal("sigma", 0); err != nil {
			return nil, err
		}
		if j.Cap, err = kv.floatVal("cap", 4); err != nil {
			return nil, err
		}
		if j.Frac, err = kv.floatVal("frac", 1); err != nil {
			return nil, err
		}
		if j.Sel, err = kv.selVal(SelRandom); err != nil {
			return nil, err
		}
		if j.Sigma <= 0 || j.Sigma > 2 {
			return nil, bad("sigma must be in (0, 2]")
		}
		if j.Cap <= 1 || j.Cap > 1e6 {
			return nil, bad("cap must be in (1, 1e6]")
		}
		if j.Frac <= 0 || j.Frac > 1 {
			return nil, bad("frac must be in (0, 1]")
		}
		return j, nil

	default:
		return nil, bad("unknown kind (throttle|boost|drain|jitter)")
	}
}

// specBuilder renders the canonical key=value spec form of a component.
type specBuilder struct {
	b     strings.Builder
	first bool
}

func (s *specBuilder) kind(kind string) {
	s.b.WriteString(kind)
	s.first = true
}

func (s *specBuilder) add(key string, val any) {
	if s.first {
		s.b.WriteByte(':')
		s.first = false
	} else {
		s.b.WriteByte(',')
	}
	fmt.Fprintf(&s.b, "%s=%v", key, val)
}

// sel appends the selection key unless it is the component default.
func (s *specBuilder) sel(sel, def string) {
	if sel != "" && sel != def {
		s.add("sel", sel)
	}
}

func (s *specBuilder) String() string { return s.b.String() }
