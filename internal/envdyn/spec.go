package envdyn

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"diffusionlb/internal/randx"
)

// ErrBadSpec reports a malformed environment spec.
var ErrBadSpec = errors.New("envdyn: invalid spec")

// FromSpec builds a Dynamics from a compact textual spec, the syntax shared
// by the lbsim CLI and the sweep engine. Unlike the positional grammars of
// the other spec families, environment components take key=value arguments
// (they have too many optional knobs for positions to stay readable):
//
//	throttle:at=R,frac=F,factor=X[,until=U][,sel=fast|slow|random]
//	    from round R on, the selected F·n nodes run at X times their base
//	    speed (X in (0, 1]); until=U restores them at round U
//	throttle:every=P,dur=D,frac=F,factor=X[,sel=...]
//	    recurring: active during the first D rounds of every P-round period
//	boost:...
//	    same keys as throttle with factor >= 1 (speed-up events)
//	drain:at=R,frac=F[,ramp=T][,restore=R2[,rramp=T2]][,sel=...]
//	    ramp the selected nodes' speed to the floor of 1 over T rounds from
//	    round R (a leave proxy); restore=R2 ramps back up over T2 rounds (a
//	    join proxy)
//	jitter:sigma=S[,cap=C][,frac=F][,sel=...]
//	    bounded random-walk speed drift exp(S·w_i(t)), multiplier clamped
//	    to [1/C, C] (default C=4); default selection is every node
//
// Parts joined with "+" compose multiplicatively, and "compose(...)" is an
// accepted wrapper around a "+"-joined list:
// "throttle:at=100,frac=0.25,factor=0.25+jitter:sigma=0.05". The empty spec
// means a static environment and returns (nil, nil). n is the node count
// (must be positive); seed is the master seed the selection and jitter
// streams derive from, with each composed part salted by its position.
//
// The selection fraction resolves to max(1, round(F·n)) nodes; sel=fast
// (the default for throttle/boost/drain) targets the highest base speeds
// with ties broken toward the lowest index.
func FromSpec(spec string, n int, seed uint64) (Dynamics, error) {
	if spec == "" {
		return nil, nil
	}
	if n <= 0 {
		return nil, fmt.Errorf("%w: %d nodes", ErrBadSpec, n)
	}
	if inner, ok := strings.CutPrefix(spec, "compose("); ok {
		body, ok := strings.CutSuffix(inner, ")")
		if !ok || body == "" {
			return nil, fmt.Errorf("%w: %q: unterminated or empty compose(...)", ErrBadSpec, spec)
		}
		spec = body
	}
	parts := strings.Split(spec, "+")
	dyns := make(Compose, 0, len(parts))
	for pi, part := range parts {
		d, err := fromOneSpec(part, randx.Mix(seed, uint64(pi)))
		if err != nil {
			return nil, err
		}
		dyns = append(dyns, d)
	}
	if len(dyns) == 1 {
		return dyns[0], nil
	}
	return dyns, nil
}

// ValidateSpec reports whether spec parses, without needing the real node
// count (sweep validation runs before graphs are built).
func ValidateSpec(spec string) error {
	_, err := FromSpec(spec, 1<<31-1, 0)
	return err
}

// Args holds the parsed comma-separated key=value argument list of one
// spec component. It is exported (together with SpecBuilder) so that the
// other key=value spec family — internal/scenario — shares one grammar
// implementation with this package.
type Args struct {
	part string
	m    map[string]string
}

// ParseArgs parses the argument list of one component, rejecting
// duplicate, unknown and malformed keys. part is the full component text
// (for error messages), args the text after the "kind:" prefix.
func ParseArgs(part, args string, allowed []string) (*Args, error) {
	kv := &Args{part: part, m: map[string]string{}}
	if args == "" {
		return kv, nil
	}
	ok := func(key string) bool {
		for _, a := range allowed {
			if a == key {
				return true
			}
		}
		return false
	}
	for _, f := range strings.Split(args, ",") {
		k, v, found := strings.Cut(f, "=")
		if !found || k == "" || v == "" {
			return nil, kv.Bad(fmt.Sprintf("argument %q is not key=value", f))
		}
		if !ok(k) {
			return nil, kv.Bad(fmt.Sprintf("unknown key %q (valid: %s)", k, strings.Join(allowed, ", ")))
		}
		if _, dup := kv.m[k]; dup {
			return nil, kv.Bad(fmt.Sprintf("duplicate key %q", k))
		}
		kv.m[k] = v
	}
	return kv, nil
}

// Bad wraps msg into an ErrBadSpec error naming the component.
func (kv *Args) Bad(msg string) error {
	return fmt.Errorf("%w: %q: %s", ErrBadSpec, kv.part, msg)
}

// Has reports whether the key was present in the input.
func (kv *Args) Has(key string) bool { _, ok := kv.m[key]; return ok }

// Int returns the integer value of key, or def when absent.
func (kv *Args) Int(key string, def int) (int, error) {
	v, ok := kv.m[key]
	if !ok {
		return def, nil
	}
	i, err := strconv.Atoi(v)
	if err != nil {
		return 0, kv.Bad(fmt.Sprintf("%s=%q: not an integer", key, v))
	}
	return i, nil
}

// Float returns the finite float value of key, or def when absent.
func (kv *Args) Float(key string, def float64) (float64, error) {
	v, ok := kv.m[key]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, kv.Bad(fmt.Sprintf("%s=%q: not a finite number", key, v))
	}
	return f, nil
}

// Sel returns the validated "sel" key (fast|slow|random), or def when
// absent.
func (kv *Args) Sel(def string) (string, error) {
	v, ok := kv.m["sel"]
	if !ok {
		return def, nil
	}
	switch v {
	case SelFast, SelSlow, SelRandom:
		return v, nil
	}
	return "", kv.Bad(fmt.Sprintf("sel=%q (fast|slow|random)", v))
}

// Require errors unless every named key was present in the input.
func (kv *Args) Require(keys ...string) error {
	for _, k := range keys {
		if !kv.Has(k) {
			return kv.Bad(fmt.Sprintf("missing required key %q", k))
		}
	}
	return nil
}

// DrainFromArgs parses and validates the drain component's key=value
// arguments into a Drain. It is exported because the scenario grammar's
// drain event shares the exact parameter set: internal/scenario parses
// through this helper, so the -env and -scenario drain grammars cannot
// silently diverge.
func DrainFromArgs(part, args string, seed uint64) (*Drain, error) {
	kv, err := ParseArgs(part, args, []string{"at", "ramp", "restore", "rramp", "frac", "sel"})
	if err != nil {
		return nil, err
	}
	if err := kv.Require("at", "frac"); err != nil {
		return nil, err
	}
	d := &Drain{Seed: seed}
	if d.At, err = kv.Int("at", 0); err != nil {
		return nil, err
	}
	if d.Ramp, err = kv.Int("ramp", 1); err != nil {
		return nil, err
	}
	if d.Restore, err = kv.Int("restore", 0); err != nil {
		return nil, err
	}
	if d.RestoreRamp, err = kv.Int("rramp", 1); err != nil {
		return nil, err
	}
	if d.Frac, err = kv.Float("frac", 0); err != nil {
		return nil, err
	}
	if d.Sel, err = kv.Sel(SelFast); err != nil {
		return nil, err
	}
	if d.At < 1 {
		return nil, kv.Bad("at must be >= 1")
	}
	if d.Ramp < 1 {
		return nil, kv.Bad("ramp must be >= 1")
	}
	if d.Frac <= 0 || d.Frac > 1 {
		return nil, kv.Bad("frac must be in (0, 1]")
	}
	if kv.Has("rramp") && !kv.Has("restore") {
		return nil, kv.Bad("rramp needs restore")
	}
	if kv.Has("restore") {
		if d.Restore < d.At+d.Ramp {
			return nil, kv.Bad("restore must be >= at+ramp (drain completes first)")
		}
		if d.RestoreRamp < 1 {
			return nil, kv.Bad("rramp must be >= 1")
		}
	}
	return d, nil
}

// fromOneSpec parses a single "+"-free component.
func fromOneSpec(part string, seed uint64) (Dynamics, error) {
	kind, args, _ := strings.Cut(part, ":")
	bad := func(msg string) error {
		return fmt.Errorf("%w: %q: %s", ErrBadSpec, part, msg)
	}
	switch kind {
	case "throttle", "boost":
		kv, err := ParseArgs(part, args, []string{"at", "until", "every", "dur", "frac", "factor", "sel"})
		if err != nil {
			return nil, err
		}
		if err := kv.Require("frac", "factor"); err != nil {
			return nil, err
		}
		t := &Throttle{Boost: kind == "boost", Seed: seed}
		if t.At, err = kv.Int("at", 0); err != nil {
			return nil, err
		}
		if t.Until, err = kv.Int("until", 0); err != nil {
			return nil, err
		}
		if t.Every, err = kv.Int("every", 0); err != nil {
			return nil, err
		}
		if t.Dur, err = kv.Int("dur", 0); err != nil {
			return nil, err
		}
		if t.Frac, err = kv.Float("frac", 0); err != nil {
			return nil, err
		}
		if t.Factor, err = kv.Float("factor", 0); err != nil {
			return nil, err
		}
		if t.Sel, err = kv.Sel(SelFast); err != nil {
			return nil, err
		}
		switch {
		case kv.Has("at") && kv.Has("every"):
			return nil, bad("set either at=... (one-shot) or every=...,dur=... (recurring), not both")
		case kv.Has("every"):
			if t.Every < 1 {
				return nil, bad("every must be >= 1")
			}
			if !kv.Has("dur") || t.Dur < 1 || t.Dur > t.Every {
				return nil, bad("recurring mode needs dur in [1, every]")
			}
			if kv.Has("until") {
				return nil, bad("until only applies to one-shot mode")
			}
		case kv.Has("at"):
			if t.At < 1 {
				return nil, bad("at must be >= 1")
			}
			if kv.Has("dur") {
				return nil, bad("dur only applies to recurring mode")
			}
			if t.Until != 0 && t.Until <= t.At {
				return nil, bad("until must exceed at")
			}
		default:
			return nil, bad("missing schedule: at=... or every=...,dur=...")
		}
		if t.Frac <= 0 || t.Frac > 1 {
			return nil, bad("frac must be in (0, 1]")
		}
		if t.Factor <= 0 {
			return nil, bad("factor must be > 0")
		}
		if kind == "throttle" && t.Factor > 1 {
			return nil, bad("throttle factor must be <= 1 (use boost for speed-ups)")
		}
		if kind == "boost" && t.Factor < 1 {
			return nil, bad("boost factor must be >= 1 (use throttle for slow-downs)")
		}
		return t, nil

	case "drain":
		return DrainFromArgs(part, args, seed)

	case "jitter":
		kv, err := ParseArgs(part, args, []string{"sigma", "cap", "frac", "sel"})
		if err != nil {
			return nil, err
		}
		if err := kv.Require("sigma"); err != nil {
			return nil, err
		}
		j := &Jitter{Seed: seed}
		if j.Sigma, err = kv.Float("sigma", 0); err != nil {
			return nil, err
		}
		if j.Cap, err = kv.Float("cap", 4); err != nil {
			return nil, err
		}
		if j.Frac, err = kv.Float("frac", 1); err != nil {
			return nil, err
		}
		if j.Sel, err = kv.Sel(SelRandom); err != nil {
			return nil, err
		}
		if j.Sigma <= 0 || j.Sigma > 2 {
			return nil, bad("sigma must be in (0, 2]")
		}
		if j.Cap <= 1 || j.Cap > 1e6 {
			return nil, bad("cap must be in (1, 1e6]")
		}
		if j.Frac <= 0 || j.Frac > 1 {
			return nil, bad("frac must be in (0, 1]")
		}
		return j, nil

	default:
		return nil, bad("unknown kind (throttle|boost|drain|jitter)")
	}
}

// SpecBuilder renders the canonical key=value spec form of a component
// (shared with internal/scenario, like Args).
type SpecBuilder struct {
	b     strings.Builder
	first bool
}

// Kind starts the component with its kind name.
func (s *SpecBuilder) Kind(kind string) {
	s.b.WriteString(kind)
	s.first = true
}

// Add appends one key=value argument.
func (s *SpecBuilder) Add(key string, val any) {
	if s.first {
		s.b.WriteByte(':')
		s.first = false
	} else {
		s.b.WriteByte(',')
	}
	fmt.Fprintf(&s.b, "%s=%v", key, val)
}

// Sel appends the selection key unless it is the component default.
func (s *SpecBuilder) Sel(sel, def string) {
	if sel != "" && sel != def {
		s.Add("sel", sel)
	}
}

// String returns the rendered spec.
func (s *SpecBuilder) String() string { return s.b.String() }
