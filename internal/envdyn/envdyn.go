// Package envdyn generates deterministic environment dynamics for the
// balancing engines: time-varying processor speeds. It is the symmetric
// counterpart of internal/workload — workload mutates the load vector
// between rounds, envdyn mutates the speed vector (and therefore the ideal
// load distribution the schemes chase).
//
// The paper's heterogeneous model (Section II-c) fixes speeds for the whole
// run; this package opens the regime of Berenbrink et al. ("Dynamic
// Averaging Load Balancing on Arbitrary Graphs", 2023), where the target
// itself moves: nodes get throttled or boosted (thermal/power management),
// drain toward speed 1 as a proxy for leaving the network, ramp back up as
// a proxy for joining, or jitter around their base speed.
//
// A Dynamics produces per-node speed multipliers; node i's effective speed
// in round t is max(1, s_i·m_i(t)) with s_i the base speed, so the model
// invariant min speed = 1 always holds. Multipliers compose by
// multiplication (Compose), mirroring workload's additive Compose.
//
// Determinism contract: a Dynamics is a pure function of (seed, round) —
// every random draw comes from a counter-based randx stream keyed by
// (masterSeed, round[, node]), never from mutable generator state that the
// caller cannot replay. Replaying round t therefore always produces the
// same speeds, which keeps simulations bit-identical across worker counts
// and preserves checkpoint/restore semantics: a run resumed from a snapshot
// at any round boundary sees exactly the speed trajectory the uninterrupted
// run saw. (Jitter keeps an incremental walk cache as an optimization, but
// the cache is rebuilt from the counter streams whenever a round is queried
// out of order, so the contract holds.)
//
// Like workload.Mutator, a Dynamics may reuse internal scratch, so it is
// driven by one goroutine at a time.
package envdyn

import (
	"fmt"
	"math"

	"diffusionlb/internal/hetero"
	"diffusionlb/internal/nodeset"
	"diffusionlb/internal/randx"
)

// Dynamics produces the per-node speed multipliers of a round.
// Implementations follow the package determinism contract.
type Dynamics interface {
	// Name identifies the dynamics in reports (the canonical spec string,
	// re-parsable by FromSpec for parser-built values).
	Name() string
	// Factors multiplies this component's per-node speed multipliers for
	// the completed round `round` (1-based, matching the driver's round
	// counter) into mult, which has one entry per node and is pre-filled
	// with 1 by the caller, and reports whether it scaled anything. base is
	// the immutable base speed assignment the run started with (used for
	// speed-ranked node selection, never mutated).
	Factors(round int, base *hetero.Speeds, mult []float64) bool
}

// Selection names for the affected node set, shared with internal/scenario
// through the common internal/nodeset picker (coupled events must target the
// identical set on both the speed and the load side).
const (
	// SelFast selects the fastest base-speed nodes (ties toward the lowest
	// index) — the natural target for throttling.
	SelFast = nodeset.Fast
	// SelSlow selects the slowest base-speed nodes.
	SelSlow = nodeset.Slow
	// SelRandom selects nodes drawn from the seed's selection stream.
	SelRandom = nodeset.Random
)

// Throttle scales the speeds of a selected node set by Factor while active:
// one-shot (from round At on, optionally ending at round Until) or
// recurring (active during the first Dur rounds of every Every-round
// period). Factor < 1 models thermal or power throttling; the Boost flag
// only changes the reported name for Factor > 1 scenarios — the arithmetic
// is identical. FromSpec validates parameters; a hand-constructed value
// with a non-positive Factor or an empty schedule simply never fires.
type Throttle struct {
	// At is the one-shot activation round (>= 1); ignored when Every > 0.
	At int
	// Until, when > 0, deactivates the one-shot throttle from that round on.
	Until int
	// Every, when > 0, makes the throttle recurring with this period.
	Every int
	// Dur is the active prefix length of each period (recurring mode).
	Dur int
	// Frac is the affected fraction of nodes (at least one node).
	Frac float64
	// Factor is the speed multiplier while active.
	Factor float64
	// Sel picks the affected set: SelFast (default), SelSlow or SelRandom.
	Sel string
	// Boost renders the name as "boost" instead of "throttle".
	Boost bool
	// Seed feeds the SelRandom selection stream.
	Seed uint64

	s nodeset.Selector
}

var _ Dynamics = (*Throttle)(nil)

// active reports whether the throttle applies in the given round.
func (t *Throttle) active(round int) bool {
	if t.Every > 0 {
		// Rounds are 1-based: active on the first Dur rounds of each
		// Every-round period, i.e. rounds kP+1 .. kP+Dur.
		return (round-1)%t.Every < t.Dur
	}
	if t.At < 1 || round < t.At {
		return false
	}
	return t.Until <= 0 || round < t.Until
}

// Name implements Dynamics.
func (t *Throttle) Name() string {
	kind := "throttle"
	if t.Boost {
		kind = "boost"
	}
	var b SpecBuilder
	b.Kind(kind)
	if t.Every > 0 {
		b.Add("every", t.Every)
		b.Add("dur", t.Dur)
	} else {
		b.Add("at", t.At)
	}
	b.Add("frac", t.Frac)
	b.Add("factor", t.Factor)
	if t.Every <= 0 && t.Until > 0 {
		b.Add("until", t.Until)
	}
	b.Sel(t.Sel, SelFast)
	return b.String()
}

// Factors implements Dynamics.
func (t *Throttle) Factors(round int, base *hetero.Speeds, mult []float64) bool {
	if t.Factor <= 0 || t.Factor == 1 || !t.active(round) {
		return false
	}
	t.s.Frac, t.s.Sel, t.s.Seed = t.Frac, t.Sel, t.Seed
	for _, i := range t.s.Pick(base, len(mult)) {
		mult[i] *= t.Factor
	}
	return true
}

// Drain ramps the selected nodes' speed multiplier linearly from 1 to 0
// over Ramp rounds starting at round At, so their effective speed sinks to
// the clamp floor of 1 — the proxy for nodes leaving the network (they stop
// attracting load beyond the minimum). With Restore > 0 the multiplier
// ramps back from 0 to 1 over RestoreRamp rounds starting at round Restore
// — the join proxy. Ramp lengths of 1 switch instantaneously.
type Drain struct {
	// At is the first drain round (>= 1).
	At int
	// Ramp is the drain ramp length in rounds (>= 1).
	Ramp int
	// Restore, when > 0, is the first ramp-up round (>= At+Ramp).
	Restore int
	// RestoreRamp is the ramp-up length in rounds (>= 1).
	RestoreRamp int
	// Frac is the affected fraction of nodes (at least one node).
	Frac float64
	// Sel picks the affected set: SelFast (default), SelSlow or SelRandom.
	Sel string
	// Seed feeds the SelRandom selection stream.
	Seed uint64

	s nodeset.Selector
}

var _ Dynamics = (*Drain)(nil)

// multAt returns the drain multiplier for a round.
func (d *Drain) multAt(round int) float64 {
	if d.At < 1 || round < d.At {
		return 1
	}
	if d.Restore > 0 && round >= d.Restore {
		rr := d.RestoreRamp
		if rr < 1 {
			rr = 1
		}
		q := float64(round-d.Restore+1) / float64(rr)
		if q >= 1 {
			return 1
		}
		return q
	}
	ramp := d.Ramp
	if ramp < 1 {
		ramp = 1
	}
	p := float64(round-d.At+1) / float64(ramp)
	if p >= 1 {
		return 0
	}
	return 1 - p
}

// Name implements Dynamics.
func (d *Drain) Name() string {
	var b SpecBuilder
	b.Kind("drain")
	b.Add("at", d.At)
	b.Add("frac", d.Frac)
	if d.Ramp > 1 {
		b.Add("ramp", d.Ramp)
	}
	if d.Restore > 0 {
		b.Add("restore", d.Restore)
		if d.RestoreRamp > 1 {
			b.Add("rramp", d.RestoreRamp)
		}
	}
	b.Sel(d.Sel, SelFast)
	return b.String()
}

// Factors implements Dynamics.
func (d *Drain) Factors(round int, base *hetero.Speeds, mult []float64) bool {
	m := d.multAt(round)
	if m == 1 {
		return false
	}
	d.s.Frac, d.s.Sel, d.s.Seed = d.Frac, d.Sel, d.Seed
	for _, i := range d.s.Pick(base, len(mult)) {
		mult[i] *= m
	}
	return true
}

// Jitter applies a bounded random-walk multiplier exp(Sigma·w_i(t)) to the
// selected nodes, where each w_i performs an independent ±1 walk whose
// round-t step is drawn from the (seed, t, i) counter stream, reflected so
// the multiplier stays within [1/Cap, Cap]. It models slow environmental
// speed drift (shared tenancy, DVFS) rather than discrete events.
//
// The walk state is cached incrementally for sequential driving; querying a
// round out of order rebuilds the walk from the counter streams, so the
// value stays a pure function of (seed, round).
type Jitter struct {
	// Sigma is the per-step log-speed scale (> 0).
	Sigma float64
	// Cap bounds the multiplier to [1/Cap, Cap] (default 4).
	Cap float64
	// Frac is the affected fraction of nodes (default 1 = every node).
	Frac float64
	// Sel picks the affected set: SelRandom (default), SelFast or SelSlow.
	Sel string
	// Seed feeds the walk and selection streams.
	Seed uint64

	s         nodeset.Selector
	walk      []int
	walkRound int
}

var _ Dynamics = (*Jitter)(nil)

// Name implements Dynamics.
func (j *Jitter) Name() string {
	var b SpecBuilder
	b.Kind("jitter")
	b.Add("sigma", j.Sigma)
	if j.Cap > 0 && j.Cap != 4 {
		b.Add("cap", j.Cap)
	}
	if frac := j.frac(); frac != 1 {
		b.Add("frac", frac)
	}
	b.Sel(j.Sel, SelRandom)
	return b.String()
}

func (j *Jitter) frac() float64 {
	if j.Frac <= 0 {
		return 1
	}
	return j.Frac
}

func (j *Jitter) capOrDefault() float64 {
	if j.Cap <= 1 {
		return 4
	}
	return j.Cap
}

// Factors implements Dynamics.
func (j *Jitter) Factors(round int, base *hetero.Speeds, mult []float64) bool {
	if j.Sigma <= 0 || round < 1 {
		return false
	}
	n := len(mult)
	j.s.Frac, j.s.Sel, j.s.Seed = j.frac(), j.selOrDefault(), j.Seed
	nodes := j.s.Pick(base, n)
	// Reflect the walk at ±maxW so it can always wander back within a few
	// rounds. maxW truncates (and is floored at 1 when Sigma > ln Cap), so
	// the multiplier is additionally clamped to the documented band below.
	cap := j.capOrDefault()
	maxW := int(math.Log(cap) / j.Sigma)
	if maxW < 1 {
		maxW = 1
	}
	if j.walk == nil || len(j.walk) != n || j.walkRound > round {
		j.walk = make([]int, n)
		j.walkRound = 0
	}
	for j.walkRound < round {
		j.walkRound++
		r := uint64(j.walkRound)
		for _, i := range nodes {
			w := j.walk[i]
			if randx.Mix3(j.Seed, r, uint64(i))&1 == 0 {
				w--
			} else {
				w++
			}
			if w > maxW {
				w = maxW - 1
			} else if w < -maxW {
				w = -(maxW - 1)
			}
			j.walk[i] = w
		}
	}
	any := false
	for _, i := range nodes {
		if j.walk[i] != 0 {
			m := math.Exp(j.Sigma * float64(j.walk[i]))
			if m > cap {
				m = cap
			} else if m < 1/cap {
				m = 1 / cap
			}
			mult[i] *= m
			any = true
		}
	}
	return any
}

func (j *Jitter) selOrDefault() string {
	if j.Sel == "" {
		return SelRandom
	}
	return j.Sel
}

// Compose applies several dynamics in order, multiplying their factors —
// the counterpart of workload.Compose's delta summing.
type Compose []Dynamics

var _ Dynamics = Compose{}

// Name implements Dynamics.
func (c Compose) Name() string {
	name := ""
	for i, d := range c {
		if i > 0 {
			name += "+"
		}
		name += d.Name()
	}
	return name
}

// Factors implements Dynamics.
func (c Compose) Factors(round int, base *hetero.Speeds, mult []float64) bool {
	any := false
	for _, d := range c {
		if d.Factors(round, base, mult) {
			any = true
		}
	}
	return any
}

// Applier evaluates a Dynamics against a base speed assignment round by
// round, clamps effective speeds at the model minimum of 1, and reports
// when the effective vector actually changes — the driver-facing half of
// the subsystem (sim.Runner owns one per run). Like a Dynamics it is driven
// by one goroutine at a time.
type Applier struct {
	base *hetero.Speeds
	dyn  Dynamics
	mult []float64
	eff  []float64
	prev []float64
	sp   *hetero.Speeds
}

// NewApplier builds an applier for n nodes over the given base speeds (nil
// means homogeneous).
func NewApplier(base *hetero.Speeds, n int, dyn Dynamics) (*Applier, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: %d nodes", ErrBadSpec, n)
	}
	if dyn == nil {
		return nil, fmt.Errorf("%w: nil dynamics", ErrBadSpec)
	}
	if base == nil {
		base = hetero.Homogeneous(n)
	}
	if base.Len() != n {
		return nil, fmt.Errorf("%w: %d base speeds for %d nodes", ErrBadSpec, base.Len(), n)
	}
	return &Applier{
		base: base,
		dyn:  dyn,
		mult: make([]float64, n),
		eff:  make([]float64, n),
		prev: base.Slice(),
		sp:   base,
	}, nil
}

// Base returns the base speed assignment.
func (a *Applier) Base() *hetero.Speeds { return a.base }

// SpeedsAt returns the effective speed assignment for the completed round
// and the number of nodes whose speed differs from the previously returned
// round's. A changed count of 0 means the returned value is the same
// assignment as before: the caller can skip reweighting entirely. The
// effective speeds are a pure function of the round, so an Applier rebuilt
// after a checkpoint restore reports the change relative to the base and
// converges to the identical trajectory.
func (a *Applier) SpeedsAt(round int) (*hetero.Speeds, int, error) {
	for i := range a.mult {
		a.mult[i] = 1
	}
	a.dyn.Factors(round, a.base, a.mult)
	changed := 0
	for i := range a.eff {
		e := a.base.Of(i) * a.mult[i]
		if e < 1 {
			e = 1
		}
		a.eff[i] = e
		//lint:allow floateq change detection on exactly recomputed speeds; a tolerance would mask real steps
		if e != a.prev[i] {
			changed++
		}
	}
	if changed == 0 {
		return a.sp, 0, nil
	}
	copy(a.prev, a.eff)
	sp, err := hetero.New(a.eff)
	if err != nil {
		return nil, 0, fmt.Errorf("envdyn: %q at round %d: %w", a.dyn.Name(), round, err)
	}
	a.sp = sp
	return sp, changed, nil
}
