package envdyn

import (
	"errors"
	"reflect"
	"testing"

	"diffusionlb/internal/hetero"
)

func twoClass(t testing.TB) *hetero.Speeds {
	t.Helper()
	sp, err := hetero.TwoClass(64, 0.25, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func mustDyn(t testing.TB, spec string, n int, seed uint64) Dynamics {
	t.Helper()
	d, err := FromSpec(spec, n, seed)
	if err != nil {
		t.Fatalf("FromSpec(%q): %v", spec, err)
	}
	return d
}

func factorsAt(t testing.TB, d Dynamics, base *hetero.Speeds, n, round int) []float64 {
	t.Helper()
	mult := make([]float64, n)
	for i := range mult {
		mult[i] = 1
	}
	d.Factors(round, base, mult)
	return mult
}

func TestThrottleOneShot(t *testing.T) {
	base := twoClass(t)
	d := mustDyn(t, "throttle:at=10,frac=0.125,factor=0.25,until=20", 64, 1)
	// Before the event: identity.
	for _, r := range []int{1, 9} {
		for i, m := range factorsAt(t, d, base, 64, r) {
			if m != 1 {
				t.Fatalf("round %d: node %d multiplier %g before the event", r, i, m)
			}
		}
	}
	// Active window: exactly round(0.125*64) = 8 nodes at 0.25, and they
	// must be the fastest (base speed 4) ones.
	for _, r := range []int{10, 19} {
		mult := factorsAt(t, d, base, 64, r)
		count := 0
		for i, m := range mult {
			switch m {
			case 1:
			case 0.25:
				count++
				if base.Of(i) != 4 {
					t.Errorf("round %d: throttled node %d has base speed %g, want a fast node", r, i, base.Of(i))
				}
			default:
				t.Fatalf("round %d: unexpected multiplier %g", r, m)
			}
		}
		if count != 8 {
			t.Fatalf("round %d: %d nodes throttled, want 8", r, count)
		}
	}
	// After until: identity again.
	for i, m := range factorsAt(t, d, base, 64, 20) {
		if m != 1 {
			t.Fatalf("node %d multiplier %g after until", i, m)
		}
	}
}

func TestThrottleRecurring(t *testing.T) {
	d := mustDyn(t, "throttle:every=10,dur=3,frac=0.5,factor=0.5", 8, 1)
	base := hetero.Homogeneous(8)
	active := func(r int) bool {
		for _, m := range factorsAt(t, d, base, 8, r) {
			if m != 1 {
				return true
			}
		}
		return false
	}
	// "First Dur rounds of every period", 1-based: {1,2,3}, {11,12,13}, …
	for r, want := range map[int]bool{1: true, 3: true, 4: false, 10: false, 11: true, 13: true, 14: false, 21: true} {
		if got := active(r); got != want {
			t.Errorf("round %d: active=%v, want %v", r, got, want)
		}
	}
}

func TestDrainRampAndRestore(t *testing.T) {
	base := twoClass(t)
	d := mustDyn(t, "drain:at=10,frac=0.125,ramp=4,restore=20,rramp=2", 64, 1)
	sel := -1
	step := func(r int) float64 {
		mult := factorsAt(t, d, base, 64, r)
		for i, m := range mult {
			if m != 1 {
				if sel < 0 {
					sel = i
				}
				return mult[sel]
			}
		}
		if sel >= 0 {
			return mult[sel]
		}
		return 1
	}
	want := map[int]float64{9: 1, 10: 0.75, 11: 0.5, 12: 0.25, 13: 0, 19: 0, 20: 0.5, 21: 1, 30: 1}
	for r, m := range want {
		if got := step(r); got != m {
			t.Errorf("round %d: multiplier %g, want %g", r, got, m)
		}
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	base := twoClass(t)
	d1 := mustDyn(t, "jitter:sigma=0.1,cap=2", 64, 9)
	d2 := mustDyn(t, "jitter:sigma=0.1,cap=2", 64, 9)
	// Sequential drive of d1 vs out-of-order queries on d2: the walk must be
	// a pure function of the round.
	var seq [][]float64
	for r := 1; r <= 50; r++ {
		seq = append(seq, factorsAt(t, d1, base, 64, r))
	}
	for _, r := range []int{50, 3, 27, 1} {
		got := factorsAt(t, d2, base, 64, r)
		if !reflect.DeepEqual(got, seq[r-1]) {
			t.Fatalf("round %d: out-of-order query differs from sequential drive", r)
		}
	}
	for r, mult := range seq {
		for i, m := range mult {
			if m < 0.5-1e-12 || m > 2+1e-12 {
				t.Fatalf("round %d node %d: multiplier %g outside [1/cap, cap]", r+1, i, m)
			}
		}
	}
	// The walk must actually move something.
	moved := false
	for _, mult := range seq {
		for _, m := range mult {
			if m != 1 {
				moved = true
			}
		}
	}
	if !moved {
		t.Error("jitter never changed any multiplier in 50 rounds")
	}
}

// TestJitterCapHoldsForLargeSigma: when Sigma exceeds ln(Cap) a single walk
// step overshoots the band, so the multiplier itself must be clamped —
// regression test for the documented [1/Cap, Cap] bound.
func TestJitterCapHoldsForLargeSigma(t *testing.T) {
	base := hetero.Homogeneous(16)
	d := mustDyn(t, "jitter:sigma=2", 16, 9) // default cap 4, sigma > ln 4
	for r := 1; r <= 200; r++ {
		for i, m := range factorsAt(t, d, base, 16, r) {
			if m < 0.25-1e-12 || m > 4+1e-12 {
				t.Fatalf("round %d node %d: multiplier %g outside [1/4, 4]", r, i, m)
			}
		}
	}
}

func TestComposeMultiplies(t *testing.T) {
	base := hetero.Homogeneous(8)
	d := mustDyn(t, "throttle:at=5,frac=1,factor=0.5+throttle:at=7,frac=1,factor=0.5", 8, 1)
	if m := factorsAt(t, d, base, 8, 6)[0]; m != 0.5 {
		t.Errorf("round 6 multiplier %g, want 0.5", m)
	}
	if m := factorsAt(t, d, base, 8, 7)[0]; m != 0.25 {
		t.Errorf("round 7 multiplier %g, want 0.25 (composed)", m)
	}
}

func TestComposeWrapper(t *testing.T) {
	d := mustDyn(t, "compose(throttle:at=5,frac=1,factor=0.5+jitter:sigma=0.1)", 8, 1)
	want := "throttle:at=5,frac=1,factor=0.5+jitter:sigma=0.1"
	if d.Name() != want {
		t.Errorf("Name() = %q, want %q", d.Name(), want)
	}
}

func TestNameRoundTrips(t *testing.T) {
	specs := []string{
		"throttle:at=100,frac=0.25,factor=0.25",
		"throttle:at=100,frac=0.25,factor=0.25,until=200",
		"throttle:every=50,dur=10,frac=0.5,factor=0.75,sel=random",
		"boost:at=10,frac=0.1,factor=4",
		"drain:at=10,frac=0.125",
		"drain:at=10,frac=0.125,ramp=4,restore=20,rramp=2,sel=slow",
		"jitter:sigma=0.1",
		"jitter:sigma=0.1,cap=2,frac=0.5,sel=fast",
		"throttle:at=5,frac=1,factor=0.5+jitter:sigma=0.05",
	}
	for _, spec := range specs {
		d := mustDyn(t, spec, 64, 3)
		if d.Name() != spec {
			t.Errorf("Name(%q) = %q, want the canonical input back", spec, d.Name())
		}
		again := mustDyn(t, d.Name(), 64, 3)
		if again.Name() != d.Name() {
			t.Errorf("Name %q does not reparse to itself (got %q)", d.Name(), again.Name())
		}
	}
}

func TestFromSpecErrors(t *testing.T) {
	bad := []string{
		"warp:at=1",
		"throttle",
		"throttle:frac=0.5,factor=0.5",                     // no schedule
		"throttle:at=0,frac=0.5,factor=0.5",                // at < 1
		"throttle:at=5,frac=0.5,factor=2",                  // throttle must slow down
		"boost:at=5,frac=0.5,factor=0.5",                   // boost must speed up
		"throttle:at=5,frac=1.5,factor=0.5",                // frac > 1
		"throttle:at=5,frac=0.5,factor=0.5,until=5",        // until <= at
		"throttle:at=5,every=10,dur=2,frac=0.5,factor=0.5", // both schedules
		"throttle:every=10,frac=0.5,factor=0.5",            // recurring without dur
		"throttle:every=10,dur=20,frac=0.5,factor=0.5",     // dur > every
		"throttle:at=5,frac=0.5,factor=0.5,boop=1",         // unknown key
		"throttle:at=5,at=6,frac=0.5,factor=0.5",           // duplicate key
		"throttle:at=x,frac=0.5,factor=0.5",                // non-numeric
		"throttle:at=5,frac=NaN,factor=0.5",                // non-finite
		"throttle:at=5,frac=0.5,factor=0.5,sel=psychic",    // bad selection
		"drain:frac=0.5",                                   // missing at
		"drain:at=5,frac=0.5,rramp=3",                      // rramp without restore
		"drain:at=5,frac=0.5,ramp=10,restore=8",            // restore before drain ends
		"jitter:cap=2",                                     // missing sigma
		"jitter:sigma=0",                                   // sigma <= 0
		"jitter:sigma=0.1,cap=1",                           // cap <= 1
		"compose(throttle:at=5,frac=1,factor=0.5",          // unterminated
		"compose()",                               // empty
		"throttle:at=5,frac=0.5,factor=0.5+",      // empty part
		"throttle:at=5,frac=0.5,factor=0.5,until", // bare key
	}
	for _, spec := range bad {
		if _, err := FromSpec(spec, 64, 1); !errors.Is(err, ErrBadSpec) {
			t.Errorf("FromSpec(%q) = %v, want ErrBadSpec", spec, err)
		}
	}
	if d, err := FromSpec("", 64, 1); d != nil || err != nil {
		t.Errorf("empty spec should be (nil, nil), got (%v, %v)", d, err)
	}
	if _, err := FromSpec("jitter:sigma=0.1", 0, 1); err == nil {
		t.Error("n <= 0 must be rejected")
	}
	if err := ValidateSpec("throttle:at=5,frac=0.5,factor=0.5"); err != nil {
		t.Errorf("ValidateSpec rejected a valid spec: %v", err)
	}
	if err := ValidateSpec("warp:x=1"); err == nil {
		t.Error("ValidateSpec accepted garbage")
	}
}

func TestApplierClampsAndDetectsChanges(t *testing.T) {
	base := twoClass(t)
	dyn := mustDyn(t, "throttle:at=10,frac=0.125,factor=0.125,until=20", 64, 1)
	a, err := NewApplier(base, 64, dyn)
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: no event yet, no change, base pointer returned.
	sp, changed, err := a.SpeedsAt(1)
	if err != nil || changed != 0 || sp != base {
		t.Fatalf("round 1: (%v, %d, %v), want (base, 0, nil)", sp, changed, err)
	}
	// Round 10: 8 fast nodes drop to max(1, 4*0.125) = 1 (the clamp floor).
	sp, changed, err = a.SpeedsAt(10)
	if err != nil {
		t.Fatal(err)
	}
	if changed != 8 {
		t.Fatalf("round 10: %d nodes changed, want 8", changed)
	}
	ones := 0
	for i := 0; i < 64; i++ {
		if sp.Of(i) < 1 {
			t.Fatalf("clamp violated: speed %g < 1", sp.Of(i))
		}
		if base.Of(i) == 4 && sp.Of(i) == 1 {
			ones++
		}
	}
	if ones != 8 {
		t.Errorf("%d fast nodes clamped to 1, want 8", ones)
	}
	// Round 11: same effective speeds — no re-reweight needed.
	if _, changed, _ = a.SpeedsAt(11); changed != 0 {
		t.Errorf("round 11 reported %d changes for an unchanged environment", changed)
	}
	// Round 20: restored to base values.
	sp, changed, err = a.SpeedsAt(20)
	if err != nil {
		t.Fatal(err)
	}
	if changed != 8 {
		t.Errorf("round 20: %d nodes changed, want 8 restored", changed)
	}
	for i := 0; i < 64; i++ {
		if sp.Of(i) != base.Of(i) {
			t.Fatalf("node %d not restored: %g vs base %g", i, sp.Of(i), base.Of(i))
		}
	}
}

func TestApplierValidation(t *testing.T) {
	dyn := mustDyn(t, "jitter:sigma=0.1", 8, 1)
	if _, err := NewApplier(nil, 0, dyn); err == nil {
		t.Error("n <= 0 must fail")
	}
	if _, err := NewApplier(nil, 8, nil); err == nil {
		t.Error("nil dynamics must fail")
	}
	if _, err := NewApplier(twoClass(t), 8, dyn); err == nil {
		t.Error("base length mismatch must fail")
	}
	a, err := NewApplier(nil, 8, dyn)
	if err != nil {
		t.Fatal(err)
	}
	if a.Base().Len() != 8 || !a.Base().IsHomogeneous() {
		t.Error("nil base must resolve to homogeneous speeds")
	}
}

// FuzzFromSpec: no input may panic, and every accepted spec must have a
// canonical Name that reparses to itself.
func FuzzFromSpec(f *testing.F) {
	for _, s := range []string{
		"throttle:at=100,frac=0.25,factor=0.25",
		"boost:every=50,dur=10,frac=0.5,factor=2",
		"drain:at=10,frac=0.125,ramp=4,restore=20,rramp=2",
		"jitter:sigma=0.1,cap=2",
		"compose(throttle:at=5,frac=1,factor=0.5+jitter:sigma=0.05)",
		"throttle:at=5,frac=0.5", "x", "", ":::", "throttle:at=,frac=1",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		d, err := FromSpec(spec, 32, 1)
		if err != nil || d == nil {
			return
		}
		name := d.Name()
		again, err := FromSpec(name, 32, 1)
		if err != nil {
			t.Fatalf("Name %q of accepted spec %q does not reparse: %v", name, spec, err)
		}
		if again.Name() != name {
			t.Fatalf("Name not canonical: %q -> %q", name, again.Name())
		}
		// Factors must not panic on a few representative rounds.
		base := hetero.Homogeneous(32)
		mult := make([]float64, 32)
		for _, r := range []int{1, 2, 100} {
			for i := range mult {
				mult[i] = 1
			}
			d.Factors(r, base, mult)
		}
	})
}
