package hetero

import (
	"errors"
	"testing"
)

// TestSpeedsFromSpecNameRoundTrips: the parser stamps its result with the
// canonical spec, which re-parses to the identical vector under the same
// (n, seed) — the Name() contract every spec family now shares.
func TestSpeedsFromSpecNameRoundTrips(t *testing.T) {
	cases := []struct {
		spec, want string
	}{
		{"twoclass:0.25:4", "twoclass:0.25:4"},
		{"twoclass:0.250:4.0", "twoclass:0.25:4"}, // canonicalized
		{"range:8", "range:8"},
		{"powerlaw:2.2:16", "powerlaw:2.2:16"},
		{"single:3:5", "single:3:5"},
	}
	for _, tc := range cases {
		sp, err := SpeedsFromSpec(tc.spec, 50, 7)
		if err != nil {
			t.Fatalf("SpeedsFromSpec(%q): %v", tc.spec, err)
		}
		if sp.Name() != tc.want {
			t.Errorf("Name(%q) = %q, want %q", tc.spec, sp.Name(), tc.want)
		}
		again, err := SpeedsFromSpec(sp.Name(), 50, 7)
		if err != nil {
			t.Fatalf("Name %q does not reparse: %v", sp.Name(), err)
		}
		if again.Name() != sp.Name() {
			t.Errorf("Name not canonical: %q -> %q", sp.Name(), again.Name())
		}
		for i := 0; i < 50; i++ {
			if again.Of(i) != sp.Of(i) {
				t.Fatalf("reparsed %q differs at node %d", sp.Name(), i)
			}
		}
	}
	// Programmatic vectors have no name.
	sp, err := New([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name() != "" {
		t.Errorf("hand-built vector has name %q", sp.Name())
	}
	var nilSp *Speeds
	if nilSp.Name() != "" {
		t.Error("nil Speeds should have an empty name")
	}
}

func TestSpeedsFromSpecErrors(t *testing.T) {
	bad := []string{
		"warp:9",
		"twoclass",
		"twoclass:0.5",
		"twoclass:0.5:4:extra", // argument count now enforced
		"twoclass:NaN:4",
		"twoclass:0.5:Inf",
		"range:x",
		"range:8:9",
		"powerlaw:2.2",
		"single:1.5:4", // fractional node index
		"single:99:4",  // out of range for n=10
	}
	for _, spec := range bad {
		if _, err := SpeedsFromSpec(spec, 10, 1); err == nil {
			t.Errorf("SpeedsFromSpec(%q) should fail", spec)
		}
	}
	// Spec-shaped failures wrap ErrBadSpec (so the CLI can attach the
	// grammar); vector-model failures keep wrapping ErrBadSpeeds.
	if _, err := SpeedsFromSpec("warp:9", 10, 1); !errors.Is(err, ErrBadSpec) {
		t.Errorf("unknown kind error = %v, want ErrBadSpec", err)
	}
	if _, err := SpeedsFromSpec("twoclass:2:4", 10, 1); !errors.Is(err, ErrBadSpeeds) {
		t.Errorf("bad fraction error = %v, want ErrBadSpeeds", err)
	}
}

// FuzzSpeedsFromSpec: no input may panic, and every accepted spec must have
// a canonical Name that reparses to the same vector.
func FuzzSpeedsFromSpec(f *testing.F) {
	for _, s := range []string{
		"twoclass:0.25:4", "range:8", "powerlaw:2.2:16", "single:3:5",
		"", "x", ":::", "twoclass:NaN:4", "single:-1:2", "range:1e309",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		sp, err := SpeedsFromSpec(spec, 32, 1)
		if err != nil || sp == nil {
			return
		}
		name := sp.Name()
		if name == "" {
			t.Fatalf("accepted spec %q produced an unnamed vector", spec)
		}
		again, err := SpeedsFromSpec(name, 32, 1)
		if err != nil {
			t.Fatalf("Name %q of accepted spec %q does not reparse: %v", name, spec, err)
		}
		if again.Name() != name {
			t.Fatalf("Name not canonical: %q -> %q", name, again.Name())
		}
		for i := 0; i < 32; i++ {
			if again.Of(i) != sp.Of(i) {
				t.Fatalf("reparse of %q differs at node %d", name, i)
			}
		}
	})
}
