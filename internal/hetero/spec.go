package hetero

import (
	"fmt"
	"strconv"
	"strings"
)

// SpeedsFromSpec builds processor speeds from a compact textual spec, the
// syntax shared by the lbsim CLI and the sweep engine:
//
//	twoclass:FRAC:SPEED | range:MAX | powerlaw:ALPHA:MAX | single:IDX:SPEED
//
// The empty spec means homogeneous speeds and returns (nil, nil).
func SpeedsFromSpec(spec string, n int, seed uint64) (*Speeds, error) {
	if spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ":")
	num := func(i int) (float64, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("hetero: speeds spec %q: missing argument %d", spec, i)
		}
		return strconv.ParseFloat(parts[i], 64)
	}
	switch parts[0] {
	case "twoclass":
		frac, err := num(1)
		if err != nil {
			return nil, err
		}
		speed, err := num(2)
		if err != nil {
			return nil, err
		}
		return TwoClass(n, frac, speed, seed)
	case "range":
		max, err := num(1)
		if err != nil {
			return nil, err
		}
		return UniformRange(n, max, seed)
	case "powerlaw":
		alpha, err := num(1)
		if err != nil {
			return nil, err
		}
		max, err := num(2)
		if err != nil {
			return nil, err
		}
		return PowerLaw(n, alpha, max, seed)
	case "single":
		idx, err := num(1)
		if err != nil {
			return nil, err
		}
		speed, err := num(2)
		if err != nil {
			return nil, err
		}
		return SingleFast(n, int(idx), speed)
	default:
		return nil, fmt.Errorf("hetero: unknown speeds spec %q (twoclass|range|powerlaw|single)", spec)
	}
}
