package hetero

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ErrBadSpec reports a malformed speeds spec (as opposed to ErrBadSpeeds,
// which reports an invalid speed vector).
var ErrBadSpec = errors.New("hetero: invalid speeds spec")

// SpeedsFromSpec builds processor speeds from a compact textual spec, the
// syntax shared by the lbsim CLI and the sweep engine:
//
//	twoclass:FRAC:SPEED | range:MAX | powerlaw:ALPHA:MAX | single:IDX:SPEED
//
// The empty spec means homogeneous speeds and returns (nil, nil). The
// result's Name() is the canonical spec and re-parses to the same vector
// under the same (n, seed).
func SpeedsFromSpec(spec string, n int, seed uint64) (*Speeds, error) {
	if spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ":")
	bad := func(msg string) error {
		return fmt.Errorf("%w: %q: %s", ErrBadSpec, spec, msg)
	}
	num := func(i int) (float64, error) {
		if i >= len(parts) {
			return 0, bad(fmt.Sprintf("missing argument %d", i))
		}
		v, err := strconv.ParseFloat(parts[i], 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, bad(fmt.Sprintf("argument %d (%q): not a finite number", i, parts[i]))
		}
		return v, nil
	}
	exactly := func(want int) error {
		if len(parts) != want {
			return bad(fmt.Sprintf("takes exactly %d arguments", want-1))
		}
		return nil
	}
	var (
		sp  *Speeds
		err error
	)
	switch parts[0] {
	case "twoclass":
		if err = exactly(3); err != nil {
			return nil, err
		}
		var frac, speed float64
		if frac, err = num(1); err != nil {
			return nil, err
		}
		if speed, err = num(2); err != nil {
			return nil, err
		}
		if sp, err = TwoClass(n, frac, speed, seed); err != nil {
			return nil, err
		}
		sp.name = specName("twoclass", frac, speed)
	case "range":
		if err = exactly(2); err != nil {
			return nil, err
		}
		var max float64
		if max, err = num(1); err != nil {
			return nil, err
		}
		if sp, err = UniformRange(n, max, seed); err != nil {
			return nil, err
		}
		sp.name = specName("range", max)
	case "powerlaw":
		if err = exactly(3); err != nil {
			return nil, err
		}
		var alpha, max float64
		if alpha, err = num(1); err != nil {
			return nil, err
		}
		if max, err = num(2); err != nil {
			return nil, err
		}
		if sp, err = PowerLaw(n, alpha, max, seed); err != nil {
			return nil, err
		}
		sp.name = specName("powerlaw", alpha, max)
	case "single":
		if err = exactly(3); err != nil {
			return nil, err
		}
		var idx, speed float64
		if idx, err = num(1); err != nil {
			return nil, err
		}
		//lint:allow floateq integrality check: Trunc equality is exact by construction
		if idx != math.Trunc(idx) {
			return nil, bad("node index must be an integer")
		}
		if speed, err = num(2); err != nil {
			return nil, err
		}
		if sp, err = SingleFast(n, int(idx), speed); err != nil {
			return nil, err
		}
		sp.name = specName("single", int(idx), speed)
	default:
		return nil, bad("unknown kind (twoclass|range|powerlaw|single)")
	}
	return sp, nil
}

// specName renders the canonical colon-joined spec form.
func specName(parts ...any) string {
	var b strings.Builder
	for i, p := range parts {
		if i > 0 {
			b.WriteByte(':')
		}
		fmt.Fprintf(&b, "%v", p)
	}
	return b.String()
}
