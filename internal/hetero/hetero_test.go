package hetero

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestHomogeneous(t *testing.T) {
	sp := Homogeneous(10)
	if sp.Len() != 10 || !sp.IsHomogeneous() {
		t.Fatalf("Homogeneous(10) = len %d, homog %v", sp.Len(), sp.IsHomogeneous())
	}
	if sp.Of(3) != 1 || sp.Max() != 1 || sp.Sum() != 10 {
		t.Error("homogeneous accessors wrong")
	}
	s := sp.Slice()
	if len(s) != 10 {
		t.Fatalf("Slice len %d", len(s))
	}
	for _, v := range s {
		if v != 1 {
			t.Fatal("homogeneous slice must be all ones")
		}
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name   string
		speeds []float64
	}{
		{"empty", nil},
		{"below-one", []float64{1, 0.5}},
		{"nan", []float64{1, math.NaN()}},
		{"inf", []float64{1, math.Inf(1)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.speeds); !errors.Is(err, ErrBadSpeeds) {
				t.Errorf("New(%v) should fail with ErrBadSpeeds", tc.speeds)
			}
		})
	}
}

func TestNewDetectsHomogeneous(t *testing.T) {
	sp, err := New([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !sp.IsHomogeneous() {
		t.Error("all-ones vector should be detected as homogeneous")
	}
	sp2, err := New([]float64{1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sp2.IsHomogeneous() {
		t.Error("non-uniform vector misdetected as homogeneous")
	}
	if sp2.Max() != 2 || sp2.Sum() != 4 || sp2.Of(1) != 2 {
		t.Error("accessors wrong for explicit speeds")
	}
}

func TestNewCopiesInput(t *testing.T) {
	in := []float64{1, 2, 3}
	sp, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	in[0] = 99
	if sp.Of(0) != 1 {
		t.Error("New must copy the input slice")
	}
}

func TestIdealLoad(t *testing.T) {
	sp, err := New([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	ideal := sp.IdealLoad(100)
	if ideal[0] != 25 || ideal[1] != 75 {
		t.Errorf("IdealLoad = %v, want [25 75]", ideal)
	}
}

func TestTwoClass(t *testing.T) {
	sp, err := TwoClass(1000, 0.3, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	fast := 0
	for i := 0; i < sp.Len(); i++ {
		switch sp.Of(i) {
		case 5:
			fast++
		case 1:
		default:
			t.Fatalf("unexpected speed %g", sp.Of(i))
		}
	}
	if fast < 230 || fast > 370 {
		t.Errorf("fast fraction = %d/1000, want ~300", fast)
	}
	// Determinism.
	sp2, err := TwoClass(1000, 0.3, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if sp.Of(i) != sp2.Of(i) {
			t.Fatal("TwoClass must be deterministic per seed")
		}
	}
	if _, err := TwoClass(0, 0.5, 2, 1); err == nil {
		t.Error("n=0 must fail")
	}
	if _, err := TwoClass(10, 0.5, 0.5, 1); err == nil {
		t.Error("fastSpeed < 1 must fail")
	}
}

func TestUniformRange(t *testing.T) {
	sp, err := UniformRange(5000, 9, 7)
	if err != nil {
		t.Fatal(err)
	}
	var min, max, sum float64 = math.Inf(1), 0, 0
	for i := 0; i < sp.Len(); i++ {
		v := sp.Of(i)
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
	}
	if min < 1 || max > 9 {
		t.Errorf("range [%g, %g] outside [1, 9]", min, max)
	}
	if mean := sum / 5000; math.Abs(mean-5) > 0.2 {
		t.Errorf("mean %g, want ~5", mean)
	}
}

func TestPowerLaw(t *testing.T) {
	sp, err := PowerLaw(5000, 2.5, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for i := 0; i < sp.Len(); i++ {
		v := sp.Of(i)
		if v < 1 || v > 100 {
			t.Fatalf("speed %g outside [1, 100]", v)
		}
		if v > 10 {
			count++
		}
	}
	// Pareto(2.5): P(X > 10) = 10^-1.5 ≈ 3.2%, truncation shifts slightly.
	if count == 0 || count > 500 {
		t.Errorf("heavy tail count = %d, want a few percent of 5000", count)
	}
	if _, err := PowerLaw(10, 1, 100, 3); err == nil {
		t.Error("alpha <= 1 must fail")
	}
}

func TestSingleFast(t *testing.T) {
	sp, err := SingleFast(8, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		want := 1.0
		if i == 3 {
			want = 7
		}
		if sp.Of(i) != want {
			t.Fatalf("speed[%d] = %g, want %g", i, sp.Of(i), want)
		}
	}
	if sp.Sum() != 14 || sp.Max() != 7 {
		t.Error("aggregates wrong")
	}
	if _, err := SingleFast(8, 9, 2); err == nil {
		t.Error("out-of-range index must fail")
	}
}

func TestNilSpeedsSafeAccessors(t *testing.T) {
	var sp *Speeds
	if !sp.IsHomogeneous() {
		t.Error("nil Speeds must read as homogeneous")
	}
	if sp.Of(5) != 1 {
		t.Error("nil Speeds Of must be 1")
	}
	if sp.Max() != 1 {
		t.Error("nil Speeds Max must be 1")
	}
}

// Property: every generated speed vector is valid for the model.
func TestPropertyGeneratorsRespectModel(t *testing.T) {
	f := func(seed uint64, nRaw uint8, maxRaw uint8) bool {
		n := 1 + int(nRaw)%100
		maxSpeed := 1 + float64(maxRaw%50)
		sp, err := UniformRange(n, maxSpeed, seed)
		if err != nil {
			return false
		}
		var sum float64
		for i := 0; i < n; i++ {
			v := sp.Of(i)
			if v < 1 || v > maxSpeed {
				return false
			}
			sum += v
		}
		return math.Abs(sum-sp.Sum()) < 1e-9*(1+sum) && sp.Len() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
