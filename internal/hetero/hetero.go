// Package hetero models processor speeds for the heterogeneous network
// setting of the paper (Section II-c): each node i has a speed s_i >= 1, the
// minimum speed is 1, and a balanced state assigns node i the load
// x̄_i = m·s_i/s with s = s_1 + … + s_n.
package hetero

import (
	"errors"
	"fmt"
	"math"

	"diffusionlb/internal/randx"
)

// ErrBadSpeeds is returned when a speed vector violates the model (empty,
// non-finite, or minimum below 1).
var ErrBadSpeeds = errors.New("hetero: invalid speed vector")

// Speeds is a per-node processor speed assignment. A nil Speeds means the
// homogeneous model (all speeds 1); every accessor treats nil that way, so
// homogeneous callers never allocate an all-ones vector.
type Speeds struct {
	s     []float64
	sum   float64
	max   float64
	homog bool
	// name is the canonical spec for parser-built vectors (SpeedsFromSpec);
	// empty for programmatically constructed ones.
	name string
}

// Homogeneous returns the all-ones speed assignment for n nodes.
func Homogeneous(n int) *Speeds {
	return &Speeds{sum: float64(n), max: 1, homog: true, s: nil}
}

// New validates and wraps an explicit speed vector. Per the model the
// minimum speed must be exactly >= 1 and all entries finite.
func New(speeds []float64) (*Speeds, error) {
	if len(speeds) == 0 {
		return nil, fmt.Errorf("%w: empty", ErrBadSpeeds)
	}
	cp := make([]float64, len(speeds))
	copy(cp, speeds)
	sum, max := 0.0, 0.0
	for i, v := range cp {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: non-finite speed at node %d", ErrBadSpeeds, i)
		}
		if v < 1 {
			return nil, fmt.Errorf("%w: speed %g < 1 at node %d", ErrBadSpeeds, v, i)
		}
		sum += v
		if v > max {
			max = v
		}
	}
	homog := true
	for _, v := range cp {
		if v != 1 {
			homog = false
			break
		}
	}
	if homog {
		return Homogeneous(len(cp)), nil
	}
	return &Speeds{s: cp, sum: sum, max: max}, nil
}

// Len returns the number of nodes. For a Homogeneous value it is the n it
// was created with.
func (sp *Speeds) Len() int {
	if sp.s != nil {
		return len(sp.s)
	}
	return int(sp.sum)
}

// IsHomogeneous reports whether every speed equals 1.
func (sp *Speeds) IsHomogeneous() bool { return sp == nil || sp.homog }

// Name returns the canonical spec string for vectors built by
// SpeedsFromSpec (it re-parses to the same vector under the same seed and
// node count) and "" for programmatically constructed ones.
func (sp *Speeds) Name() string {
	if sp == nil {
		return ""
	}
	return sp.name
}

// Of returns s_i.
func (sp *Speeds) Of(i int) float64 {
	if sp == nil || sp.s == nil {
		return 1
	}
	return sp.s[i]
}

// Sum returns s = Σ s_i.
func (sp *Speeds) Sum() float64 { return sp.sum }

// Max returns s_max.
func (sp *Speeds) Max() float64 {
	if sp == nil || sp.s == nil {
		return 1
	}
	return sp.max
}

// Slice returns a copy of the full speed vector (materializing ones for the
// homogeneous case).
func (sp *Speeds) Slice() []float64 {
	n := sp.Len()
	out := make([]float64, n)
	if sp.s == nil {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	copy(out, sp.s)
	return out
}

// IdealLoad returns the proportional target x̄_i = total·s_i/s for every
// node given a total load.
func (sp *Speeds) IdealLoad(total float64) []float64 {
	n := sp.Len()
	out := make([]float64, n)
	for i := range out {
		out[i] = total * sp.Of(i) / sp.sum
	}
	return out
}

// TwoClass returns n speeds where a fraction fastFrac of nodes (chosen
// deterministically from the seed) run at fastSpeed and the rest at 1.
func TwoClass(n int, fastFrac, fastSpeed float64, seed uint64) (*Speeds, error) {
	if n <= 0 || fastFrac < 0 || fastFrac > 1 || fastSpeed < 1 {
		return nil, fmt.Errorf("%w: TwoClass(n=%d, frac=%g, speed=%g)", ErrBadSpeeds, n, fastFrac, fastSpeed)
	}
	rng := randx.New(seed)
	s := make([]float64, n)
	for i := range s {
		if rng.Float64() < fastFrac {
			s[i] = fastSpeed
		} else {
			s[i] = 1
		}
	}
	return New(s)
}

// UniformRange returns n speeds drawn uniformly from [1, maxSpeed].
func UniformRange(n int, maxSpeed float64, seed uint64) (*Speeds, error) {
	if n <= 0 || maxSpeed < 1 {
		return nil, fmt.Errorf("%w: UniformRange(n=%d, max=%g)", ErrBadSpeeds, n, maxSpeed)
	}
	rng := randx.New(seed)
	s := make([]float64, n)
	for i := range s {
		s[i] = 1 + rng.Float64()*(maxSpeed-1)
	}
	return New(s)
}

// PowerLaw returns n speeds distributed as a bounded Pareto with the given
// exponent alpha > 1 on [1, maxSpeed]; heavier tails model a few very fast
// machines among commodity ones.
func PowerLaw(n int, alpha, maxSpeed float64, seed uint64) (*Speeds, error) {
	if n <= 0 || alpha <= 1 || maxSpeed <= 1 {
		return nil, fmt.Errorf("%w: PowerLaw(n=%d, alpha=%g, max=%g)", ErrBadSpeeds, n, alpha, maxSpeed)
	}
	rng := randx.New(seed)
	s := make([]float64, n)
	// Inverse-CDF sampling of a Pareto(alpha) truncated to [1, maxSpeed].
	hMax := 1 - math.Pow(maxSpeed, 1-alpha)
	for i := range s {
		u := rng.Float64() * hMax
		s[i] = math.Pow(1-u, 1/(1-alpha))
		if s[i] > maxSpeed {
			s[i] = maxSpeed
		}
	}
	return New(s)
}

// SingleFast returns the homogeneous vector with one node (index fast) sped
// up to fastSpeed — the simplest heterogeneous stress case.
func SingleFast(n, fast int, fastSpeed float64) (*Speeds, error) {
	if n <= 0 || fast < 0 || fast >= n || fastSpeed < 1 {
		return nil, fmt.Errorf("%w: SingleFast(n=%d, i=%d, speed=%g)", ErrBadSpeeds, n, fast, fastSpeed)
	}
	s := make([]float64, n)
	for i := range s {
		s[i] = 1
	}
	s[fast] = fastSpeed
	return New(s)
}
