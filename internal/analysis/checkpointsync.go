package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"diffusionlb/internal/analysis/driver"
)

// CheckpointSync keeps engine checkpoints honest. For every struct type
// that declares both a Checkpoint and a Restore method, each field the type
// mutates during a run (any write through the receiver outside Checkpoint/
// Restore themselves) must be touched by BOTH methods — otherwise a
// checkpoint/restore cycle silently resumes with stale state and the
// bit-identical-resume contract (checkpoint_test.go's replay pinning)
// drifts one field at a time as the engines grow.
//
// Fields that are genuinely derived — per-round scratch rebuilt by Step
// before use, or operator state the resuming driver replays — are annotated
// at their declaration with //lint:allow checkpointsync <why>, which
// doubles as documentation of why each field may legitimately escape the
// checkpoint. Constructors are exempt by construction: they build the value
// through a local, not through a method receiver.
var CheckpointSync = &driver.Analyzer{
	Name: "checkpointsync",
	Doc: "every field a Checkpoint/Restore-carrying type mutates must be covered " +
		"by both methods or justified with //lint:allow checkpointsync",
	Run: runCheckpointSync,
}

// ckptType accumulates the evidence for one Checkpoint/Restore-carrying type.
type ckptType struct {
	spec       *ast.TypeSpec
	structType *ast.StructType
	checkpoint *ast.FuncDecl
	restore    *ast.FuncDecl
	// mutated maps field name -> the first mutating method's name.
	mutated map[string]string
	// mutatedPos remembers the first write position per field for stable
	// fallback reporting.
	order []string
}

func runCheckpointSync(pass *driver.Pass) error {
	typesByName := map[string]*ckptType{}
	// Pass 1: find struct types and their Checkpoint/Restore/other methods.
	pass.Inspector().Preorder([]ast.Node{(*ast.TypeSpec)(nil)}, func(n ast.Node) {
		ts := n.(*ast.TypeSpec)
		if pass.IsTestFile(ts.Pos()) {
			return
		}
		if st, ok := ts.Type.(*ast.StructType); ok {
			typesByName[ts.Name.Name] = &ckptType{spec: ts, structType: st, mutated: map[string]string{}}
		}
	})
	pass.Inspector().Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Recv == nil || fd.Body == nil || pass.IsTestFile(fd.Pos()) {
			return
		}
		ct := typesByName[recvTypeName(fd)]
		if ct == nil {
			return
		}
		switch fd.Name.Name {
		case "Checkpoint":
			if fd.Type.Params.NumFields() == 0 {
				ct.checkpoint = fd
				return
			}
		case "Restore":
			ct.restore = fd
			return
		}
		recordFieldWrites(pass, fd, ct)
	})
	// Pass 2: for covered types, require both-method coverage of every
	// mutated field.
	for _, ct := range typesByName {
		if ct.checkpoint == nil || ct.restore == nil {
			continue
		}
		inCkpt := fieldsTouched(pass, ct.checkpoint)
		inRest := fieldsTouched(pass, ct.restore)
		for _, name := range ct.order {
			if inCkpt[name] && inRest[name] {
				continue
			}
			missing := "Checkpoint and Restore"
			switch {
			case inCkpt[name]:
				missing = "Restore"
			case inRest[name]:
				missing = "Checkpoint"
			}
			pass.Reportf(fieldPos(ct, name),
				"field %s.%s is mutated during the run (by %s) but not covered by %s: a checkpoint/restore cycle resumes with stale state; capture it or justify with //lint:allow checkpointsync <why>",
				ct.spec.Name.Name, name, ct.mutated[name], missing)
		}
	}
	return nil
}

// fieldPos locates the declaration of the named field (falling back to the
// type spec), so //lint:allow sits on the field it documents.
func fieldPos(ct *ckptType, name string) token.Pos {
	for _, field := range ct.structType.Fields.List {
		for _, id := range field.Names {
			if id.Name == name {
				return id.Pos()
			}
		}
	}
	return ct.spec.Pos()
}

// recvTypeName returns the receiver's base type name of a method.
func recvTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// recvVar returns the receiver variable object of a method (nil when the
// receiver is unnamed).
func recvVar(pass *driver.Pass, fd *ast.FuncDecl) *types.Var {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	v, _ := pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	return v
}

// recordFieldWrites collects receiver-field mutations in a method body:
// direct assignment, element assignment, op-assign, inc/dec, copy into, and
// swap assignments all count.
func recordFieldWrites(pass *driver.Pass, fd *ast.FuncDecl, ct *ckptType) {
	recv := recvVar(pass, fd)
	if recv == nil {
		return
	}
	note := func(name string) {
		if _, ok := ct.mutated[name]; !ok {
			ct.mutated[name] = fd.Name.Name
			ct.order = append(ct.order, name)
		}
	}
	target := func(e ast.Expr) {
		if name, ok := recvFieldOf(pass, e, recv); ok {
			note(name)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				target(lhs)
			}
		case *ast.IncDecStmt:
			target(n.X)
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "copy" && len(n.Args) == 2 {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && obj.Parent() == types.Universe {
					target(n.Args[0])
				}
			}
		}
		return true
	})
}

// recvFieldOf reports the field name when e writes through recv: recv.f,
// recv.f[i], recv.f[i:j] — peeling index and slice layers.
func recvFieldOf(pass *driver.Pass, e ast.Expr, recv *types.Var) (string, bool) {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == types.Object(recv) {
				return x.Sel.Name, true
			}
			return "", false
		default:
			return "", false
		}
	}
}

// fieldsTouched collects every receiver field referenced anywhere in the
// method (reads and writes both count as coverage).
func fieldsTouched(pass *driver.Pass, fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	recv := recvVar(pass, fd)
	if recv == nil {
		return out
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == types.Object(recv) {
			out[sel.Sel.Name] = true
		}
		return true
	})
	return out
}
