package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"diffusionlb/internal/analysis/driver"
)

// Nodeterminism forbids the three classic sources of silent nondeterminism
// in engine code: wall-clock reads, the global math/rand stream, and
// order-dependent work inside a range over a map.
//
// Every claim this repo makes — the SOS-vs-FOS discrepancy numbers and the
// bit-identical-across-worker-counts contract — requires that a run be a
// pure function of (spec, seed). time.Now/Since/Until reads wall time;
// the top-level math/rand functions draw from a process-global generator
// shared across goroutines; and Go randomizes map iteration order per run.
// Seeded generators (rand.New over an explicit source, the randx counter
// streams) are fine, as is map iteration whose body is order-independent.
var Nodeterminism = &driver.Analyzer{
	Name: "nodeterminism",
	Doc: "forbid wall-clock reads, global math/rand draws and order-dependent " +
		"map iteration in engine code (runs must be pure functions of spec and seed)",
	Run: runNodeterminism,
}

// forbiddenTimeFuncs are the wall-clock reads.
var forbiddenTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// sinkCallRE matches call names that emit output in iteration order.
var sinkCallRE = regexp.MustCompile(`(?i)(write|print|emit|record|push|flush)`)

func runNodeterminism(pass *driver.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkForbiddenCall(pass, call)
			}
			return true
		})
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkMapRanges(pass, fd)
			}
		}
	}
	return nil
}

// calleeFunc resolves a call to the package-level *types.Func it invokes,
// or nil.
func calleeFunc(pass *driver.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// checkForbiddenCall flags time.Now/Since/Until and global math/rand draws.
func checkForbiddenCall(pass *driver.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. on a seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if forbiddenTimeFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"call to time.%s in engine code: wall-clock reads make runs irreproducible; derive timing from the round counter and explicit seeds",
				fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !strings.HasPrefix(fn.Name(), "New") {
			pass.Reportf(call.Pos(),
				"call to global %s.%s draws from the shared process-wide stream and races with every other caller; use a seeded rand.New source or a randx counter stream",
				fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkMapRanges flags order-dependent bodies of range-over-map statements
// in fd: appends into an outer slice (unless the function sorts afterwards),
// floating-point accumulation into an outer variable, channel sends, and
// calls to emit/write-style sinks. Writes into another map, integer
// accumulation and pure lookups are order-independent and pass.
func checkMapRanges(pass *driver.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, fd, rs)
		return true
	})
}

func checkMapRangeBody(pass *driver.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	// declaredOutside reports whether the identifier resolves to an object
	// declared outside the range body — the state the iteration leaks into.
	declaredOutside := func(id *ast.Ident) bool {
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil || obj.Pos() == token.NoPos {
			return false
		}
		return obj.Pos() < rs.Body.Pos() || obj.Pos() >= rs.Body.End()
	}
	isFloat := func(e ast.Expr) bool {
		t := pass.TypesInfo.TypeOf(e)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
	}
	// sortedLater: a sort call after the range in the same function redeems
	// collect-then-sort appends (the canonical deterministic pattern).
	sortedLater := func() bool {
		found := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || call.Pos() < rs.End() {
				return true
			}
			if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil {
				// Any sort-package call (sort.Strings, sort.Slice, ...) or a
				// slices.Sort* call counts as establishing an order.
				p := fn.Pkg().Path()
				if p == "sort" || (p == "slices" && strings.HasPrefix(fn.Name(), "Sort")) {
					found = true
					return false
				}
			}
			return true
		})
		return found
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
					if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
						if lhs, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok && declaredOutside(lhs) && !sortedLater() {
							pass.Reportf(n.Pos(),
								"append to %q inside a range over a map records map iteration order, which Go randomizes per run; iterate sorted keys or sort %q before use",
								lhs.Name, lhs.Name)
						}
					}
				}
			}
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if len(n.Lhs) == 1 && isFloat(n.Lhs[0]) {
					if id, ok := ast.Unparen(n.Lhs[0]).(*ast.Ident); ok && declaredOutside(id) {
						pass.Reportf(n.Pos(),
							"floating-point accumulation into %q inside a range over a map is order-dependent (FP addition does not commute across magnitudes); iterate sorted keys",
							id.Name)
					}
				}
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"channel send inside a range over a map delivers in map iteration order; iterate sorted keys")
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				name := ""
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.SelectorExpr:
					name = fun.Sel.Name
				case *ast.Ident:
					name = fun.Name
				}
				if sinkCallRE.MatchString(name) {
					pass.Reportf(n.Pos(),
						"call to %s inside a range over a map emits in map iteration order; iterate sorted keys", name)
				}
			}
		}
		return true
	})
}
