package analysis

import (
	"go/ast"
	"go/types"

	"diffusionlb/internal/analysis/driver"
)

// TelemetryRead enforces the telemetry layer's determinism contract from
// the consumer side: engine code may *record* into telemetry handles but
// must never read telemetry state back — a branch on a counter value, a
// trace sequence number or a snapshot would couple the trajectory to
// scrape timing and wall-clock latencies, breaking the bit-identical
// with-and-without-telemetry guarantee the differential tests pin.
//
// The rule is type-shaped rather than a name list: a call into the
// telemetry package is a read-back when it can observe telemetry state —
// its receiver or a parameter is a telemetry-declared type — and any
// result leaks readable data (basic values like Counter.Value's int64,
// structs with exported fields like Event, or foreign types like error).
// Results that are opaque telemetry handles (types declared in the
// telemetry package whose structs have no exported fields — *Counter,
// *Gauge, *Histogram, Stopwatch, the probes) leak nothing, so
// registration and recording pass, as do pure layout helpers like
// DurationBuckets that touch no state. Value/Seq/Events/TakeSnapshot and
// the exposition writers are read-backs and do not belong in engine code.
var TelemetryRead = &driver.Analyzer{
	Name: "telemetryread",
	Doc: "forbid engine code from reading telemetry state back (telemetry is " +
		"write-only from the simulation's view; trajectories must not depend on it)",
	Run: runTelemetryRead,
}

// telemetryPkgPath is the package whose read-backs the contract guards.
const telemetryPkgPath = "diffusionlb/internal/telemetry"

func runTelemetryRead(pass *driver.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFuncOrMethod(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != telemetryPkgPath {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || !observesTelemetryState(sig) {
				return true
			}
			res := sig.Results()
			for i := 0; i < res.Len(); i++ {
				if rt := res.At(i).Type(); !opaqueTelemetryType(rt) {
					pass.Reportf(call.Pos(),
						"telemetry read-back: %s returns %s in engine code; telemetry is write-only from the simulation's view — record into handles, never branch on what they hold",
						fn.Name(), rt)
					break
				}
			}
			return true
		})
	}
	return nil
}

// calleeFuncOrMethod resolves a call to the *types.Func it invokes —
// package-level function or method — or nil. Unlike nodeterminism's
// calleeFunc it keeps methods: recording methods on telemetry handles are
// exactly what the contract classifies.
func calleeFuncOrMethod(pass *driver.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// observesTelemetryState reports whether a call through sig can read
// telemetry state at all: its receiver or one of its parameters is a
// telemetry-declared type. Pure helpers (bucket layouts, kind names)
// touch no state and are exempt regardless of what they return.
func observesTelemetryState(sig *types.Signature) bool {
	if recv := sig.Recv(); recv != nil && telemetryDeclared(recv.Type()) {
		return true
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if telemetryDeclared(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// telemetryDeclared reports whether t (or its pointee) is a named type
// declared in the telemetry package.
func telemetryDeclared(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == telemetryPkgPath
}

// opaqueTelemetryType reports whether t is a telemetry-declared handle an
// engine caller cannot read anything out of: a named type (or pointer to
// one) from the telemetry package whose underlying struct has zero
// exported fields.
func opaqueTelemetryType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != telemetryPkgPath {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Exported() {
			return false
		}
	}
	return true
}
