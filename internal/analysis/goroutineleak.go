package analysis

import (
	"go/ast"

	"diffusionlb/internal/analysis/driver"
)

// GoroutineLeak requires every go statement in engine code to either live
// inside a blessed fan-out primitive — shard.Run, whose WaitGroup joins
// every goroutine before returning, or actor.Run, whose per-step actor
// goroutines all signal a done channel the caller drains before returning
// (parallelFor, their predecessor, stays blessed for the fixture corpus) —
// or run inside a function that carries a context.Context parameter,
// making cancellation explicit.
//
// A bare goroutine in engine code has no join and no cancellation path: it
// outlives the round that spawned it, keeps writing into buffers the next
// round reuses, and turns a deterministic lockstep simulation into a racy
// one. The allowed shapes are exactly the ones the sweep pool
// (context-cancellable workers), the per-step shard.Run and the actor
// runtime's Run use today.
var GoroutineLeak = &driver.Analyzer{
	Name: "goroutineleak",
	Doc: "go statements in engine code must flow through shard.Run or actor.Run, " +
		"or run in a function carrying a context.Context parameter",
	Run: runGoroutineLeak,
}

// blessedFanOutPackages are the packages whose Run is an allowed fan-out
// primitive: the shard layout's Run (WaitGroup join before return) and the
// actor runtime's Run (every spawned actor goroutine reports to a done
// channel the step loop drains). A Run anywhere else is an ordinary
// function — naming a helper Run does not buy a spawn license. The
// testdata suffix lets the passing fixture exercise the actor blessing.
var blessedFanOutPackages = []string{
	"diffusionlb/internal/shard",
	"diffusionlb/internal/actor",
	"diffusionlb/internal/analysis/testdata/src/goroutineleak/actorrun",
}

// blessedFanOut reports whether fd is an allowed fan-out primitive: Run in
// one of the blessed engine packages, or a function literally named
// parallelFor (the pre-shard primitive, kept for the fixture corpus).
func blessedFanOut(pass *driver.Pass, fd *ast.FuncDecl) bool {
	if fd.Name.Name == "parallelFor" {
		return true
	}
	if fd.Name.Name != "Run" {
		return false
	}
	path := pass.Pkg.Path()
	for _, p := range blessedFanOutPackages {
		if path == p {
			return true
		}
	}
	return false
}

func runGoroutineLeak(pass *driver.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoStmts(pass, fd, fd.Body, blessedFanOut(pass, fd) || hasContextParam(pass, fd.Type))
		}
	}
	return nil
}

// checkGoStmts walks body flagging go statements, tracking whether any
// enclosing function (declaration or literal) satisfies the contract.
func checkGoStmts(pass *driver.Pass, fd *ast.FuncDecl, node ast.Node, allowed bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Recurse with the literal's own parameters considered too; a
			// closure taking ctx may legitimately spawn.
			checkGoStmts(pass, fd, n.Body, allowed || hasContextParam(pass, n.Type))
			return false
		case *ast.GoStmt:
			if !allowed {
				pass.Reportf(n.Pos(),
					"go statement in %s has no join or cancellation path; route fan-out through shard.Run or thread a context.Context parameter",
					fd.Name.Name)
			}
		}
		return true
	})
}

// hasContextParam reports whether the function type declares a
// context.Context parameter.
func hasContextParam(pass *driver.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t != nil && t.String() == "context.Context" {
			return true
		}
	}
	return false
}
