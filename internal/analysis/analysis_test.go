package analysis_test

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"diffusionlb/internal/analysis"
	"diffusionlb/internal/analysis/driver"
)

var (
	loaderOnce sync.Once
	loaderVal  *driver.Loader
	loaderErr  error
)

// loader returns one shared Loader so the stdlib dependency closure is
// type-checked once across all fixture tests. Fixture tests run
// sequentially (no t.Parallel) because the Loader is not concurrency-safe.
func loader(t testing.TB) *driver.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loaderVal, loaderErr = driver.NewLoader(moduleRoot(t))
	})
	if loaderErr != nil {
		t.Fatal(loaderErr)
	}
	return loaderVal
}

// moduleRoot walks up from the working directory to the go.mod root.
func moduleRoot(t testing.TB) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestNodeterminismFixture(t *testing.T) {
	driver.RunFixture(t, loader(t), fixture("nodeterminism"), analysis.Nodeterminism)
}

func TestFloatEqFixture(t *testing.T) {
	driver.RunFixture(t, loader(t), fixture("floateq"), analysis.FloatEq)
}

func TestGoroutineLeakFixture(t *testing.T) {
	driver.RunFixture(t, loader(t), fixture("goroutineleak"), analysis.GoroutineLeak)
}

// TestGoroutineLeakActorFixture pins the actor-runtime blessing: Run in a
// blessed package spawns freely (done-channel join), while helpers in the
// same package stay bound by the contract.
func TestGoroutineLeakActorFixture(t *testing.T) {
	driver.RunFixture(t, loader(t), fixture("goroutineleak/actorrun"), analysis.GoroutineLeak)
}

// TestSpecRoundtripBadFixture is the failing fixture: a parser whose result
// type lacks Name() in a package with no fuzz target.
func TestSpecRoundtripBadFixture(t *testing.T) {
	driver.RunFixture(t, loader(t), fixture("specbad"), analysis.SpecRoundtrip)
}

// TestSpecRoundtripGoodFixture is the passing fixture: Name() present, fuzz
// round-trip target present, zero diagnostics expected.
func TestSpecRoundtripGoodFixture(t *testing.T) {
	driver.RunFixture(t, loader(t), fixture("specgood"), analysis.SpecRoundtrip)
}

// TestShardSafetyFixture pins the ownership shapes the analyzer blesses
// (node range, arc range, [s] slot, stored-index replay, //lbvet:doublebuffer)
// and the cross-shard writes it must flag.
func TestShardSafetyFixture(t *testing.T) {
	driver.RunFixture(t, loader(t), fixture("shardsafety"), analysis.ShardSafety)
}

// TestHotAllocFixture pins the allocation catalogue on annotated functions
// and the two exemptions: unannotated functions and error-terminating paths.
func TestHotAllocFixture(t *testing.T) {
	driver.RunFixture(t, loader(t), fixture("hotalloc"), analysis.HotAlloc)
}

// TestCheckpointSyncFixture pins the both-methods coverage rule on a fixture
// deliberately split across two files, so it also exercises cross-file type
// resolution in RunFixture.
func TestCheckpointSyncFixture(t *testing.T) {
	driver.RunFixture(t, loader(t), fixture("checkpointsync"), analysis.CheckpointSync)
}

// TestTelemetryReadFixture pins the write-only telemetry contract: opaque
// handles (registration, recording, Stopwatch, probes) stay clean, while
// any call whose result leaks telemetry state (Value, Seq, Events,
// TakeSnapshot, the Prometheus writer) is a read-back.
func TestTelemetryReadFixture(t *testing.T) {
	driver.RunFixture(t, loader(t), fixture("telemetryread"), analysis.TelemetryRead)
}

// TestMalformedAllowDirectives pins two properties of the escape hatch: a
// directive without a justification is itself reported, and it does not
// suppress the diagnostic it sits next to.
func TestMalformedAllowDirectives(t *testing.T) {
	l := loader(t)
	pkg, err := l.LoadDir(fixture("allowbad"), true)
	if err != nil {
		t.Fatal(err)
	}
	if got := driver.CheckAllowDirectives(pkg); len(got) != 2 {
		t.Fatalf("CheckAllowDirectives reported %d diagnostics, want 2: %v", len(got), got)
	}
	diags, err := driver.Run(analysis.FloatEq, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("floateq reported %d diagnostics, want 2 (malformed allow must not suppress): %v", len(diags), diags)
	}
}

// TestSuiteScoping pins which packages each analyzer's contract binds.
func TestSuiteScoping(t *testing.T) {
	byName := map[string]analysis.Scoped{}
	for _, sa := range analysis.Suite() {
		byName[sa.Name] = sa
	}
	if len(byName) != 8 {
		t.Fatalf("suite has %d analyzers, want 8", len(byName))
	}
	cases := []struct {
		analyzer string
		path     string
		want     bool
	}{
		{"nodeterminism", "diffusionlb/internal/core", true},
		{"nodeterminism", "diffusionlb/internal/experiments", false},
		{"nodeterminism", "diffusionlb/cmd/lbsim", true},
		{"nodeterminism", "diffusionlb/internal/scalebench", true},
		{"nodeterminism", "diffusionlb/internal/analysis/driver", true},
		{"goroutineleak", "diffusionlb/internal/sweep", true},
		{"goroutineleak", "diffusionlb/internal/actor", true},
		{"goroutineleak", "diffusionlb/internal/invariants", true},
		{"goroutineleak", "diffusionlb/internal/viz", false},
		{"nodeterminism", "diffusionlb/internal/actor", true},
		{"shardsafety", "diffusionlb/internal/actor", true},
		{"checkpointsync", "diffusionlb/internal/actor", true},
		{"floateq", "diffusionlb/internal/numeric", false},
		{"floateq", "diffusionlb/internal/experiments", true},
		{"specroundtrip", "diffusionlb/internal/workload", true},
		{"specroundtrip", "diffusionlb/cmd/lbsim", true},
		{"shardsafety", "diffusionlb/internal/core", true},
		{"shardsafety", "diffusionlb/internal/spectral", true},
		{"shardsafety", "diffusionlb/internal/metrics", false},
		{"hotalloc", "diffusionlb/internal/metrics", true},
		{"checkpointsync", "diffusionlb/internal/core", true},
		// telemetryread binds the engines only; the telemetry package itself
		// and the wiring layers legitimately read state back (exposition,
		// benchmark comparisons) — but telemetry does sit inside the
		// nodeterminism net, with //lint:allow on its clock reads.
		{"telemetryread", "diffusionlb/internal/core", true},
		{"telemetryread", "diffusionlb/internal/sim", true},
		{"telemetryread", "diffusionlb/internal/actor", true},
		{"telemetryread", "diffusionlb/internal/telemetry", false},
		{"telemetryread", "diffusionlb/internal/scalebench", false},
		{"telemetryread", "diffusionlb/cmd/lbsim", false},
		{"nodeterminism", "diffusionlb/internal/telemetry", true},
		{"goroutineleak", "diffusionlb/internal/telemetry", true},
	}
	for _, c := range cases {
		sa, ok := byName[c.analyzer]
		if !ok {
			t.Fatalf("analyzer %s missing from suite", c.analyzer)
		}
		if got := sa.AppliesTo(c.path); got != c.want {
			t.Errorf("%s.AppliesTo(%s) = %v, want %v", c.analyzer, c.path, got, c.want)
		}
	}
}

// TestLintModuleClean runs the full suite over the real repo — the same
// entrypoint make lint uses — and requires a clean tree. Any new finding
// must be fixed or carry a justified //lint:allow.
func TestLintModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint is slow; run without -short")
	}
	l := loader(t)
	diags, pkgs, err := analysis.LintModule(l)
	if err != nil {
		t.Fatal(err)
	}
	if pkgs == 0 {
		t.Fatal("lint walked zero packages")
	}
	for _, d := range diags {
		t.Errorf("%s: %s: %s", l.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}
