package analysis

import (
	"io/fs"
	"path/filepath"
	"sort"
	"strings"

	"diffusionlb/internal/analysis/driver"
)

// LintModule runs the scoped suite plus the //lint:allow well-formedness
// check over every package of the loader's module and returns all surviving
// diagnostics sorted by position. It returns the number of packages
// analyzed so callers can report coverage.
func LintModule(l *driver.Loader) ([]driver.Diagnostic, int, error) {
	dirs, err := packageDirs(l.ModuleDir)
	if err != nil {
		return nil, 0, err
	}
	suite := Suite()
	var all []driver.Diagnostic
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir, true)
		if err != nil {
			return nil, 0, err
		}
		all = append(all, driver.CheckAllowDirectives(pkg)...)
		all = append(all, driver.CheckDirectives(pkg)...)
		for _, sa := range suite {
			if !sa.AppliesTo(pkg.ImportPath) {
				continue
			}
			diags, err := driver.Run(sa.Analyzer, pkg)
			if err != nil {
				return nil, 0, err
			}
			all = append(all, diags...)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		pi, pj := l.Fset.Position(all[i].Pos), l.Fset.Position(all[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
	return all, len(dirs), nil
}

// packageDirs lists the module's package directories in sorted order,
// skipping testdata trees, hidden and underscore-prefixed directories —
// the same pruning the go tool applies.
func packageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return fs.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for dir := range seen {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	return dirs, nil
}
