package analysis_test

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"diffusionlb/internal/analysis"
	"diffusionlb/internal/analysis/driver"
)

// TestSeededDefectCanary proves the suite catches the two defect classes the
// new analyzers exist for, end to end through the same entry point make lint
// uses. It copies the module into a scratch directory, plants a cross-shard
// write in the discrete pass kernel and an fmt call in the hot Step path,
// and requires LintModule to flag both. If a refactor ever blinds the
// analyzers (a renamed kernel, a loosened scope), this fails before the race
// does.
func TestSeededDefectCanary(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint on a patched copy is slow; run without -short")
	}
	root := moduleRoot(t)
	scratch := t.TempDir()
	copyModule(t, root, scratch)

	target := filepath.Join(scratch, "internal", "core", "discrete.go")
	src, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	patched := string(src)

	// Defect 1: a cross-shard write — the pass kernel writes slot 0 of the
	// shared normalized-load slice from every shard.
	const sharded = "d.z[i] = float64(d.x[i])\n"
	if !strings.Contains(patched, sharded) {
		t.Fatalf("canary anchor %q not found in discrete.go; update the canary with the kernel", sharded)
	}
	patched = strings.Replace(patched, sharded, "d.z[0] = float64(d.x[i])\n", 1)

	// Defect 2: a hot-path allocation — formatting inside the per-round Step.
	const stepHead = "func (d *Discrete) Step() {\n"
	if !strings.Contains(patched, stepHead) {
		t.Fatalf("canary anchor %q not found in discrete.go; update the canary with the kernel", stepHead)
	}
	patched = strings.Replace(patched, stepHead, stepHead+"\t_ = fmt.Sprintf(\"round %d\", d.round)\n", 1)

	if err := os.WriteFile(target, []byte(patched), 0o644); err != nil {
		t.Fatal(err)
	}

	l, err := driver.NewLoader(scratch)
	if err != nil {
		t.Fatal(err)
	}
	diags, _, err := analysis.LintModule(l)
	if err != nil {
		t.Fatal(err)
	}
	byAnalyzer := map[string]int{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
	}
	if byAnalyzer["shardsafety"] == 0 {
		t.Errorf("planted cross-shard write not caught by shardsafety; diagnostics: %v", byAnalyzer)
	}
	if byAnalyzer["hotalloc"] == 0 {
		t.Errorf("planted hot-path fmt call not caught by hotalloc; diagnostics: %v", byAnalyzer)
	}
}

// copyModule copies the module tree (minus VCS metadata) into dst.
func copyModule(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return fs.SkipDir
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		if !d.Type().IsRegular() {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}
