package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"diffusionlb/internal/analysis/driver"
)

// FloatEq flags == and != on floating-point operands (and switch statements
// over a float tag) outside the approved tolerance helpers of
// internal/numeric.
//
// Raw float equality compares bit patterns: two mathematically equal results
// that took different reduction orders (e.g. different worker counts, or a
// refactored loop) differ in the last ulp and silently flip the branch. The
// fix is numeric.ApproxEqual or a domain tolerance. Comparisons against
// exact integral constants (x == 0, beta == 1) are exempt — small integers
// are exactly representable and such checks are sentinel tests, not
// approximate-equality bugs. Where exact equality IS the contract (e.g.
// pinning bit-identical replicate agreement), annotate the line with
// //lint:allow floateq <why>.
var FloatEq = &driver.Analyzer{
	Name: "floateq",
	Doc: "flag ==/!=/switch on floating-point operands; use the internal/numeric " +
		"tolerance helpers (exact integral constant comparisons are exempt)",
	Run: runFloatEq,
}

func runFloatEq(pass *driver.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if !isFloatExpr(pass, n.X) && !isFloatExpr(pass, n.Y) {
					return true
				}
				if isIntegralConst(pass, n.X) || isIntegralConst(pass, n.Y) {
					return true
				}
				pass.Reportf(n.Pos(),
					"%s on floating-point operands compares bit patterns and is not reduction-order safe; use numeric.ApproxEqual or a domain tolerance (or //lint:allow floateq <why> if exact equality is the contract)",
					n.Op)
			case *ast.SwitchStmt:
				if n.Tag != nil && isFloatExpr(pass, n.Tag) {
					pass.Reportf(n.Pos(),
						"switch over a floating-point value performs exact comparisons per case; restructure with tolerance checks")
				}
			}
			return true
		})
	}
	return nil
}

// isFloatExpr reports whether e has a floating-point (or complex) type.
func isFloatExpr(pass *driver.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isIntegralConst reports whether e is a compile-time constant with an exact
// integer value (0, 1, -1, ...), which float64 represents exactly.
func isIntegralConst(pass *driver.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToInt(tv.Value)
	return v.Kind() == constant.Int
}
