// Package analysis is the lbvet analyzer suite: the static half of the
// repo's determinism and conservation contract.
//
// Eight analyzers cover the contract the pinned tests otherwise only catch
// after the fact:
//
//   - nodeterminism: no wall-clock reads, no global math/rand draws, no
//     order-dependent map iteration in engine code.
//   - floateq: no raw ==/!= on floats outside internal/numeric's tolerance
//     helpers.
//   - specroundtrip: every *FromSpec parser returns a Name()-carrying type
//     and has a fuzz round-trip test.
//   - goroutineleak: go statements flow through shard.Run or carry a
//     context.Context.
//   - shardsafety: writes inside (s, lo, hi int) pass bodies are provably
//     shard-local (dataflow over the driver's CFG).
//   - hotalloc: //lbvet:hotpath functions are allocation-free outside
//     error-terminating paths.
//   - checkpointsync: fields a Checkpoint/Restore-carrying type mutates are
//     covered by both methods.
//   - telemetryread: engine code records into telemetry handles but never
//     reads telemetry state back — trajectories must not depend on
//     observability.
//
// Legitimate exceptions are annotated in-source with
// "//lint:allow <analyzer> <justification>"; the justification is mandatory.
// cmd/lbvet runs the suite over the whole module (make lint), and
// internal/invariants is the matching runtime half. The suite is
// self-clean: internal/analysis and its driver are inside the
// nodeterminism/goroutineleak scope too.
package analysis

import (
	"strings"

	"diffusionlb/internal/analysis/driver"
)

// enginePackages are the deterministic-core packages the strictest
// contracts bind: everything that executes between a spec and a recorded
// series. shardsafety binds exactly these — pass bodies only exist where
// shard.Run is reachable.
var enginePackages = []string{
	"diffusionlb/internal/shard",
	"diffusionlb/internal/actor",
	"diffusionlb/internal/core",
	"diffusionlb/internal/sim",
	"diffusionlb/internal/sweep",
	"diffusionlb/internal/workload",
	"diffusionlb/internal/envdyn",
	"diffusionlb/internal/scenario",
	"diffusionlb/internal/nodeset",
	"diffusionlb/internal/spectral",
}

// determinismExtra widens the nodeterminism/goroutineleak net beyond the
// engines: the benchmark harness, the runtime-invariant layer, the telemetry
// layer, the analysis suite itself (self-clean), and every cmd/ binary.
// These layers may legitimately read clocks (a benchmark measures wall time,
// a round-latency histogram needs time.Since) — such reads carry
// //lint:allow justifications instead of living outside the scope.
var determinismExtra = []string{
	"diffusionlb/internal/scalebench",
	"diffusionlb/internal/invariants",
	"diffusionlb/internal/telemetry",
	"diffusionlb/internal/analysis",
	"diffusionlb/cmd",
}

// Scoped pairs an analyzer with the set of packages its contract applies
// to. The fixture tests bypass scoping (they run analyzers directly), so
// scope lives here rather than inside each analyzer.
type Scoped struct {
	*driver.Analyzer
	// AppliesTo reports whether the analyzer's contract covers the package.
	AppliesTo func(importPath string) bool
}

// inAny reports whether path is one of (or nested under one of) roots.
func inAny(path string, roots []string) bool {
	for _, p := range roots {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Suite returns the full lbvet analyzer suite with its package scoping.
func Suite() []Scoped {
	inEngine := func(path string) bool { return inAny(path, enginePackages) }
	inDeterminism := func(path string) bool {
		return inAny(path, enginePackages) || inAny(path, determinismExtra)
	}
	return []Scoped{
		{Nodeterminism, inDeterminism},
		{GoroutineLeak, inDeterminism},
		// floateq covers the whole module except numeric itself (the home of
		// the approved comparison helpers).
		{FloatEq, func(path string) bool { return path != "diffusionlb/internal/numeric" }},
		// The spec-grammar convention binds every package that declares a
		// parser.
		{SpecRoundtrip, func(string) bool { return true }},
		// Pass bodies only exist in engine code; hotpath annotations and
		// Checkpoint/Restore pairs can appear anywhere, so those two bind the
		// whole module.
		{ShardSafety, inEngine},
		{HotAlloc, func(string) bool { return true }},
		{CheckpointSync, func(string) bool { return true }},
		// telemetryread binds exactly the engines: the telemetry package and
		// the wiring layers (cmd/, scalebench) are where read-backs belong.
		{TelemetryRead, inEngine},
	}
}
