// Package analysis is the lbvet analyzer suite: the static half of the
// repo's determinism and conservation contract.
//
// Four analyzers cover the contract the pinned tests otherwise only catch
// after the fact:
//
//   - nodeterminism: no wall-clock reads, no global math/rand draws, no
//     order-dependent map iteration in engine code.
//   - floateq: no raw ==/!= on floats outside internal/numeric's tolerance
//     helpers.
//   - specroundtrip: every *FromSpec parser returns a Name()-carrying type
//     and has a fuzz round-trip test.
//   - goroutineleak: go statements flow through shard.Run or carry a
//     context.Context.
//
// Legitimate exceptions are annotated in-source with
// "//lint:allow <analyzer> <justification>"; the justification is mandatory.
// cmd/lbvet runs the suite over the whole module (make lint), and
// internal/invariants is the matching runtime half.
package analysis

import (
	"strings"

	"diffusionlb/internal/analysis/driver"
)

// enginePackages are the deterministic-core packages the nodeterminism and
// goroutineleak contracts bind: everything that executes between a spec and
// a recorded series. Experiment drivers, CLIs and viz sit above the
// contract (they may print progress, time themselves, etc.).
var enginePackages = []string{
	"diffusionlb/internal/shard",
	"diffusionlb/internal/core",
	"diffusionlb/internal/sim",
	"diffusionlb/internal/sweep",
	"diffusionlb/internal/workload",
	"diffusionlb/internal/envdyn",
	"diffusionlb/internal/scenario",
	"diffusionlb/internal/nodeset",
	"diffusionlb/internal/spectral",
}

// Scoped pairs an analyzer with the set of packages its contract applies
// to. The fixture tests bypass scoping (they run analyzers directly), so
// scope lives here rather than inside each analyzer.
type Scoped struct {
	*driver.Analyzer
	// AppliesTo reports whether the analyzer's contract covers the package.
	AppliesTo func(importPath string) bool
}

// Suite returns the full lbvet analyzer suite with its package scoping.
func Suite() []Scoped {
	inEngine := func(path string) bool {
		for _, p := range enginePackages {
			if path == p || strings.HasPrefix(path, p+"/") {
				return true
			}
		}
		return false
	}
	return []Scoped{
		{Nodeterminism, inEngine},
		{GoroutineLeak, inEngine},
		// floateq covers the whole module except numeric itself (the home of
		// the approved comparison helpers).
		{FloatEq, func(path string) bool { return path != "diffusionlb/internal/numeric" }},
		// The spec-grammar convention binds every package that declares a
		// parser.
		{SpecRoundtrip, func(string) bool { return true }},
	}
}
