package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"diffusionlb/internal/analysis/driver"
)

// SpecRoundtrip enforces the spec-grammar convention established across the
// graph/speeds/workload/policy/envdyn/scenario parsers: every exported
// FromSpec parser must return a type carrying a Name() string method (the
// canonical spec the value round-trips through), and its package must have a
// Fuzz* test exercising the parser.
//
// The pairing is what keeps the spec grammars honest: Name() makes every
// parsed value re-parseable (sweep CSV columns, CLI echo, checkpoint
// metadata all rely on it), and the fuzz target is what actually proves the
// FromSpec(Name()) round-trip beyond hand-picked seeds.
var SpecRoundtrip = &driver.Analyzer{
	Name: "specroundtrip",
	Doc: "every exported *FromSpec parser must return a type with a Name() string " +
		"method and have a Fuzz* round-trip test in its package",
	Run: runSpecRoundtrip,
}

// fromSpecRE matches exported spec parsers: FromSpec, SpeedsFromSpec,
// PolicyFromSpec, ...
var fromSpecRE = regexp.MustCompile(`^([A-Z][A-Za-z0-9]*)?FromSpec$`)

func runSpecRoundtrip(pass *driver.Pass) error {
	var parsers []*ast.FuncDecl
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !fromSpecRE.MatchString(fd.Name.Name) {
				continue
			}
			parsers = append(parsers, fd)
			checkNameMethod(pass, fd)
		}
	}
	if len(parsers) == 0 {
		return nil
	}
	if !hasFuzzTarget(pass) {
		names := make([]string, len(parsers))
		for i, fd := range parsers {
			names[i] = fd.Name.Name
		}
		pass.Reportf(parsers[0].Pos(),
			"package %s declares spec parser(s) %s but no Fuzz* test; add a fuzz target proving the FromSpec(Name()) round-trip",
			pass.Pkg.Name(), strings.Join(names, ", "))
	}
	return nil
}

// checkNameMethod verifies that the parser's first non-error result type
// has a Name() string method.
func checkNameMethod(pass *driver.Pass, fd *ast.FuncDecl) {
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig := fn.Type().(*types.Signature)
	var res types.Type
	for i := 0; i < sig.Results().Len(); i++ {
		t := sig.Results().At(i).Type()
		if !isErrorType(t) {
			res = t
			break
		}
	}
	if res == nil {
		return
	}
	obj, _, _ := types.LookupFieldOrMethod(res, true, pass.Pkg, "Name")
	m, ok := obj.(*types.Func)
	if ok {
		msig := m.Type().(*types.Signature)
		if msig.Params().Len() == 0 && msig.Results().Len() == 1 &&
			types.Identical(msig.Results().At(0).Type(), types.Typ[types.String]) {
			return
		}
	}
	pass.Reportf(fd.Pos(),
		"%s returns %s, which has no Name() string method; spec-parsed types must render their canonical spec so values round-trip",
		fd.Name.Name, res)
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// hasFuzzTarget scans the package's test files (in-package and external)
// for a Fuzz* function taking *testing.F. The external test package is only
// parsed, so the check there is syntactic.
func hasFuzzTarget(pass *driver.Pass) bool {
	isFuzzDecl := func(fd *ast.FuncDecl) bool {
		if fd.Recv != nil || !strings.HasPrefix(fd.Name.Name, "Fuzz") {
			return false
		}
		p := fd.Type.Params
		if p == nil || len(p.List) != 1 {
			return false
		}
		star, ok := p.List[0].Type.(*ast.StarExpr)
		if !ok {
			return false
		}
		sel, ok := star.X.(*ast.SelectorExpr)
		return ok && sel.Sel.Name == "F"
	}
	for _, f := range append(append([]*ast.File{}, pass.Files...), pass.XTestFiles...) {
		if !pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && isFuzzDecl(fd) {
				return true
			}
		}
	}
	return false
}
