package driver

import (
	"os"
	"path/filepath"
	"testing"
)

// moduleRoot walks up from the working directory to the go.mod root.
func moduleRoot(t testing.TB) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// TestLoadRepoPackage loads a package with a deep dependency closure
// (internal/sim pulls core, spectral, workload, envdyn, scenario and a wide
// slice of the standard library) and checks that full type information came
// back.
func TestLoadRepoPackage(t *testing.T) {
	l, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join(l.ModuleDir, "internal", "sim"), true)
	if err != nil {
		t.Fatal(err)
	}
	if pkg.ImportPath != "diffusionlb/internal/sim" {
		t.Fatalf("import path = %q", pkg.ImportPath)
	}
	if pkg.Types == nil || !pkg.Types.Complete() {
		t.Fatalf("package not completely type-checked")
	}
	if len(pkg.TypesInfo.Uses) == 0 || len(pkg.TypesInfo.Defs) == 0 {
		t.Fatal("no type info recorded")
	}
	if pkg.Types.Scope().Lookup("Runner") == nil {
		t.Fatal("sim.Runner not found in package scope")
	}
}

// TestLoadDirWithTests checks that in-package test files are type-checked
// into Files and external-test-package files are parsed into XTestFiles.
func TestLoadDirWithTests(t *testing.T) {
	l, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join(l.ModuleDir, "internal", "workload"), true)
	if err != nil {
		t.Fatal(err)
	}
	hasTest := false
	for _, f := range pkg.Files {
		name := l.Fset.Position(f.Pos()).Filename
		if filepath.Base(name) == "fuzz_test.go" {
			hasTest = true
		}
	}
	if !hasTest {
		t.Fatal("in-package test files not loaded")
	}
}

// TestImportUnresolvable pins the offline contract: imports outside the
// module and GOROOT fail with a clear error instead of hitting the network.
func TestImportUnresolvable(t *testing.T) {
	l, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Import("golang.org/x/tools/go/analysis"); err == nil {
		t.Fatal("expected resolution error for external module import")
	}
}
