package driver

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheckSrc parses and type-checks one dependency-free source file,
// returning what NewReachingDefs needs. Keeping the fixture import-free
// means these unit tests never touch the Loader or the stdlib closure.
func typecheckSrc(t *testing.T, src string) (*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test_src.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Types:      map[ast.Expr]types.TypeAndValue{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	return f, info
}

// findFunc returns the named top-level function declaration.
func findFunc(t *testing.T, f *ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

// reaches reports whether to is reachable from from along Succs edges.
func reaches(from, to *Block) bool {
	seen := map[*Block]bool{}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func TestCFGBranchBothArmsReturn(t *testing.T) {
	f, _ := typecheckSrc(t, `package p
func f(a int) int {
	if a > 0 {
		return 1
	} else {
		return 2
	}
}`)
	cfg := BuildCFG(findFunc(t, f, "f"))
	returning := 0
	for _, blk := range cfg.Blocks {
		returning += len(blk.Returns)
		// Only reachable blocks matter: the builder materializes an empty
		// unreachable join after the if, which harmlessly falls off the end.
		if blk.FallsToExit && reaches(cfg.Entry, blk) {
			t.Errorf("reachable block %d falls to exit; both arms return", blk.Index)
		}
	}
	if returning != 2 {
		t.Fatalf("found %d returns, want 2", returning)
	}
	if !reaches(cfg.Entry, cfg.Exit) {
		t.Fatal("exit unreachable from entry")
	}
	if len(cfg.Entry.Succs) != 2 {
		t.Fatalf("if head has %d successors, want 2 (then/else)", len(cfg.Entry.Succs))
	}
}

func TestCFGLoopHasBackEdge(t *testing.T) {
	f, _ := typecheckSrc(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`)
	cfg := BuildCFG(findFunc(t, f, "f"))
	cyclic := false
	for _, blk := range cfg.Blocks {
		for _, s := range blk.Succs {
			if s != blk && reaches(s, blk) {
				cyclic = true
			}
		}
	}
	if !cyclic {
		t.Fatal("loop produced no cycle in the CFG")
	}
	if !reaches(cfg.Entry, cfg.Exit) {
		t.Fatal("exit unreachable: loop exit edge missing")
	}
}

func TestCFGBreakContinue(t *testing.T) {
	f, _ := typecheckSrc(t, `package p
func f(xs []int) int {
	s := 0
outer:
	for i := 0; i < len(xs); i++ {
		for j := 0; j < i; j++ {
			if xs[j] < 0 {
				continue outer
			}
			if xs[j] == 0 {
				break outer
			}
			s += xs[j]
		}
	}
	return s
}`)
	cfg := BuildCFG(findFunc(t, f, "f"))
	if !reaches(cfg.Entry, cfg.Exit) {
		t.Fatal("exit unreachable through labeled break/continue")
	}
	// The labeled-branch blocks must not dead-end: every block with nodes
	// either has a successor or is the exit.
	for _, blk := range cfg.Blocks {
		if blk != cfg.Exit && len(blk.Nodes) > 0 && len(blk.Succs) == 0 && !blk.Panics {
			t.Errorf("block %d dead-ends with %d nodes", blk.Index, len(blk.Nodes))
		}
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	f, _ := typecheckSrc(t, `package p
func f(ok bool) {
	if !ok {
		panic("invariant")
	}
}`)
	cfg := BuildCFG(findFunc(t, f, "f"))
	var panicking *Block
	for _, blk := range cfg.Blocks {
		if blk.Panics {
			if panicking != nil {
				t.Fatal("multiple panicking blocks")
			}
			panicking = blk
		}
	}
	if panicking == nil {
		t.Fatal("no block marked Panics")
	}
	for _, s := range panicking.Succs {
		if s != cfg.Exit {
			t.Errorf("panicking block flows to block %d, want exit only", s.Index)
		}
	}
	// The fall-off path (ok == true) still reaches exit normally.
	fallsOff := false
	for _, blk := range cfg.Blocks {
		fallsOff = fallsOff || blk.FallsToExit
	}
	if !fallsOff {
		t.Fatal("no block falls to exit; the non-panicking path vanished")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	f, _ := typecheckSrc(t, `package p
func f(a int) int {
	s := 0
	switch a {
	case 1:
		s = 1
		fallthrough
	case 2:
		s += 2
	default:
		s = 9
	}
	return s
}`)
	cfg := BuildCFG(findFunc(t, f, "f"))
	if !reaches(cfg.Entry, cfg.Exit) {
		t.Fatal("exit unreachable through switch")
	}
	// Head must fan out to all three clauses.
	if got := len(cfg.Entry.Succs); got != 3 {
		t.Fatalf("switch head has %d successors, want 3 clauses", got)
	}
}
