package driver

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// Package is one loaded, fully type-checked package. The inspector, CFGs
// and reaching-defs solutions are built lazily and cached on the package, so
// every analyzer in a suite run shares one traversal and one dataflow
// solution per function instead of recomputing them.
type Package struct {
	Dir        string
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	XTestFiles []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info

	insp  *Inspector
	cfgs  map[ast.Node]*CFG
	reach map[ast.Node]*ReachingDefs
}

// Inspector returns the package's cached preorder inspector.
func (p *Package) Inspector() *Inspector {
	if p.insp == nil {
		p.insp = NewInspector(p.Files)
	}
	return p.insp
}

// FuncCFG returns the cached CFG of fn (a *ast.FuncDecl or *ast.FuncLit of
// this package).
func (p *Package) FuncCFG(fn ast.Node) *CFG {
	if p.cfgs == nil {
		p.cfgs = map[ast.Node]*CFG{}
	}
	if c, ok := p.cfgs[fn]; ok {
		return c
	}
	c := BuildCFG(fn)
	p.cfgs[fn] = c
	return c
}

// FuncReach returns the cached reaching-definitions solution of fn.
func (p *Package) FuncReach(fn ast.Node) *ReachingDefs {
	if p.reach == nil {
		p.reach = map[ast.Node]*ReachingDefs{}
	}
	if r, ok := p.reach[fn]; ok {
		return r
	}
	r := NewReachingDefs(p.FuncCFG(fn), p.TypesInfo)
	p.reach[fn] = r
	return r
}

// Loader parses and type-checks the packages of one module from source.
// Dependencies — including the standard library, resolved under GOROOT —
// are loaded API-only (IgnoreFuncBodies) and cached, so loading every
// package of the repo shares one dependency closure. Loader implements
// types.Importer; it needs no network, no module cache and no export data,
// which is what lets lbvet run in the offline build environment.
//
// A Loader is not safe for concurrent use.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string

	ctx     build.Context
	cache   map[string]*types.Package
	loading map[string]bool
	// pkgCache memoizes LoadDir results by (dir, includeTests), so a loader
	// shared across fixture tests, LintModule and the canary type-checks each
	// target package once.
	pkgCache map[string]*Package
}

// NewLoader builds a loader for the module rooted at moduleDir (the
// directory containing go.mod).
func NewLoader(moduleDir string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("driver: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("driver: no module line in %s/go.mod", abs)
	}
	ctx := build.Default
	// The module has no cgo; disabling it keeps the stdlib closure purely
	// source-checkable.
	ctx.CgoEnabled = false
	return &Loader{
		Fset:       token.NewFileSet(),
		ModulePath: modPath,
		ModuleDir:  abs,
		ctx:        ctx,
		cache:      map[string]*types.Package{},
		loading:    map[string]bool{},
		pkgCache:   map[string]*Package{},
	}, nil
}

// dirFor resolves an import path to a source directory: module-local paths
// map under ModuleDir, everything else under GOROOT/src (with the GOROOT
// vendor fallback). External modules are unavailable by design.
func (l *Loader) dirFor(path string) (string, error) {
	if path == l.ModulePath {
		return l.ModuleDir, nil
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), nil
	}
	src := filepath.Join(l.ctx.GOROOT, "src")
	for _, dir := range []string{
		filepath.Join(src, filepath.FromSlash(path)),
		filepath.Join(src, "vendor", filepath.FromSlash(path)),
	} {
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, nil
		}
	}
	return "", fmt.Errorf("driver: cannot resolve import %q (not in module %s or GOROOT; external modules are unavailable offline)", path, l.ModulePath)
}

// Import implements types.Importer for dependency loading: packages are
// type-checked from source with function bodies ignored and cached by path.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("driver: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, err := l.dirFor(path)
	if err != nil {
		return nil, err
	}
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("driver: %s: %w", path, err)
	}
	files, err := l.parseFiles(dir, bp.GoFiles)
	if err != nil {
		return nil, err
	}
	conf := types.Config{
		Importer:         l,
		IgnoreFuncBodies: true,
		FakeImportC:      true,
		// Dependencies only need a usable API surface; tolerate residual
		// errors (e.g. linkname-declared functions) instead of failing the
		// whole analysis run.
		Error: func(error) {},
	}
	pkg, _ := conf.Check(path, l.Fset, files, nil)
	if pkg == nil {
		return nil, fmt.Errorf("driver: type-checking %s produced no package", path)
	}
	l.cache[path] = pkg
	return pkg, nil
}

// parseFiles parses the named files of dir with comments.
func (l *Loader) parseFiles(dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// ImportPathFor maps a directory to its import path: module-relative when
// under ModuleDir, the cleaned directory path otherwise.
func (l *Loader) ImportPathFor(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return dir
	}
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(abs)
	}
	if rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// LoadDir parses and fully type-checks the package in dir. With
// includeTests, in-package _test.go files are type-checked along with the
// package sources and external-test-package files are parsed into
// XTestFiles (syntax only). Target packages are checked strictly: any
// type error fails the load.
func (l *Loader) LoadDir(dir string, includeTests bool) (*Package, error) {
	cacheKey := dir
	if includeTests {
		cacheKey += "|tests"
	}
	if pkg, ok := l.pkgCache[cacheKey]; ok {
		return pkg, nil
	}
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("driver: %s: %w", dir, err)
	}
	names := append([]string{}, bp.GoFiles...)
	if includeTests {
		names = append(names, bp.TestGoFiles...)
	}
	files, err := l.parseFiles(dir, names)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	importPath := l.ImportPathFor(dir)
	conf := types.Config{Importer: l, FakeImportC: true}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("driver: type-checking %s: %w", importPath, err)
	}
	var xfiles []*ast.File
	if includeTests {
		if xfiles, err = l.parseFiles(dir, bp.XTestGoFiles); err != nil {
			return nil, err
		}
	}
	pkg := &Package{
		Dir:        dir,
		ImportPath: importPath,
		Fset:       l.Fset,
		Files:      files,
		XTestFiles: xfiles,
		Types:      tpkg,
		TypesInfo:  info,
	}
	l.pkgCache[cacheKey] = pkg
	return pkg, nil
}
