package driver

import (
	"go/ast"
	"go/types"
	"testing"
)

// useOfName returns the n-th (0-based) read of the named identifier inside
// fn, in source order. Assignment targets are skipped: go/types records the
// LHS of `x = 2` in Uses, but the dataflow treats it as a definition.
func useOfName(t *testing.T, info *types.Info, fn ast.Node, name string, n int) *ast.Ident {
	t.Helper()
	defLHS := map[*ast.Ident]bool{}
	ast.Inspect(fn, func(nd ast.Node) bool {
		if as, ok := nd.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					defLHS[id] = true
				}
			}
		}
		return true
	})
	var found *ast.Ident
	count := 0
	ast.Inspect(fn, func(nd ast.Node) bool {
		id, ok := nd.(*ast.Ident)
		if !ok || id.Name != name || defLHS[id] {
			return true
		}
		if _, isUse := info.Uses[id]; !isUse {
			return true
		}
		if count == n && found == nil {
			found = id
		}
		count++
		return true
	})
	if found == nil {
		t.Fatalf("use #%d of %q not found", n, name)
	}
	return found
}

func reachOf(t *testing.T, src, fnName string) (*ReachingDefs, ast.Node, *types.Info) {
	t.Helper()
	f, info := typecheckSrc(t, src)
	fd := findFunc(t, f, fnName)
	cfg := BuildCFG(fd)
	return NewReachingDefs(cfg, info), fd, info
}

func TestReachingDefsStraightLine(t *testing.T) {
	reach, fd, info := reachOf(t, `package p
func f() int {
	x := 1
	x = 2
	return x
}`, "f")
	use := useOfName(t, info, fd, "x", 0) // the x in "return x" ("x = 2" is a def)
	defs := reach.DefsOf(use)
	if len(defs) != 1 {
		t.Fatalf("return x sees %d defs, want 1 (the redefinition kills the first)", len(defs))
	}
	if as, ok := defs[0].Site.(*ast.AssignStmt); !ok || as.Tok.String() != "=" {
		t.Fatalf("surviving def site = %T (%v), want the plain assignment", defs[0].Site, defs[0].Site)
	}
}

func TestReachingDefsBranchMerge(t *testing.T) {
	reach, fd, info := reachOf(t, `package p
func f(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}`, "f")
	use := useOfName(t, info, fd, "x", 0)
	if defs := reach.DefsOf(use); len(defs) != 2 {
		t.Fatalf("return x after a one-armed if sees %d defs, want 2 (both arms merge)", len(defs))
	}
}

func TestReachingDefsLoop(t *testing.T) {
	reach, fd, info := reachOf(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s = s + i
	}
	return s
}`, "f")
	// The i in the loop condition sees exactly the init and the post
	// increment — the property shardsafety's blessing proof rests on.
	condUse := useOfName(t, info, fd, "i", 0)
	defs := reach.DefsOf(condUse)
	if len(defs) != 2 {
		t.Fatalf("loop condition i sees %d defs, want 2 (init + post)", len(defs))
	}
	for _, d := range defs {
		switch d.Site.(type) {
		case *ast.AssignStmt, *ast.IncDecStmt:
		default:
			t.Errorf("unexpected def site %T for loop variable", d.Site)
		}
	}
	// s after the loop sees both the init and the in-loop redefinition.
	retUse := useOfName(t, info, fd, "s", 1) // s in "return s" (read 0 is the RHS of "s = s + i")
	if defs := reach.DefsOf(retUse); len(defs) != 2 {
		t.Fatalf("return s sees %d defs, want 2", len(defs))
	}
}

func TestReachingDefsShortCircuit(t *testing.T) {
	reach, fd, info := reachOf(t, `package p
func f(a int) bool {
	x := 0
	ok := a > 0 && x > 1
	x = 2
	return ok && x > 0
}`, "f")
	// The x inside the short-circuit operand of the ok assignment sees only
	// the initial definition.
	first := useOfName(t, info, fd, "x", 0)
	defs := reach.DefsOf(first)
	if len(defs) != 1 {
		t.Fatalf("short-circuit operand sees %d defs of x, want 1", len(defs))
	}
	if _, entry := defs[0].Site.(*ast.AssignStmt); !entry {
		t.Fatalf("def site = %T, want the x := 0 assignment", defs[0].Site)
	}
	// The x in the return's short-circuit operand sees only x = 2.
	second := useOfName(t, info, fd, "x", 1)
	defs = reach.DefsOf(second)
	if len(defs) != 1 {
		t.Fatalf("return operand sees %d defs of x, want 1 (x = 2 kills x := 0)", len(defs))
	}
}

func TestReachingDefsDefer(t *testing.T) {
	reach, fd, info := reachOf(t, `package p
func sink(int) {}
func f() int {
	x := 1
	defer sink(x)
	x = 2
	return x
}`, "f")
	// The x handed to the deferred call is evaluated at the defer statement,
	// so it sees only the definition before it.
	deferUse := useOfName(t, info, fd, "x", 0)
	defs := reach.DefsOf(deferUse)
	if len(defs) != 1 {
		t.Fatalf("deferred argument sees %d defs of x, want 1", len(defs))
	}
	if as, ok := defs[0].Site.(*ast.AssignStmt); !ok || as.Tok.String() != ":=" {
		t.Fatalf("deferred argument's def = %T (%v), want x := 1", defs[0].Site, defs[0].Site)
	}
	retUse := useOfName(t, info, fd, "x", 1)
	if defs := reach.DefsOf(retUse); len(defs) != 1 {
		t.Fatalf("return x sees %d defs, want 1", len(defs))
	}
}

func TestReachingDefsRange(t *testing.T) {
	reach, fd, info := reachOf(t, `package p
func f(xs []int) int {
	s := 0
	for _, v := range xs {
		s = s + v
	}
	return s
}`, "f")
	// v inside the body sees exactly the per-iteration range definition.
	vUse := useOfName(t, info, fd, "v", 0)
	defs := reach.DefsOf(vUse)
	if len(defs) != 1 {
		t.Fatalf("body use of v sees %d defs, want 1", len(defs))
	}
	if _, ok := defs[0].Site.(*ast.RangeStmt); !ok {
		t.Fatalf("v's def site = %T, want the RangeStmt", defs[0].Site)
	}
}

func TestReachingDefsEntryParams(t *testing.T) {
	reach, fd, info := reachOf(t, `package p
func f(a int) int {
	b := a
	return b
}`, "f")
	aUse := useOfName(t, info, fd, "a", 0)
	defs := reach.DefsOf(aUse)
	if len(defs) != 1 || !defs[0].Entry {
		t.Fatalf("parameter use sees %v, want one entry def", defs)
	}
}

// TestReachingDefsCaptureUntracked pins the closure contract: a variable
// belonging to the enclosing function is untracked in the literal's own
// analysis even when the literal assigns it — the analyzers treat untracked
// as "shared, assume the worst".
func TestReachingDefsCaptureUntracked(t *testing.T) {
	f, info := typecheckSrc(t, `package p
func f() func() {
	n := 0
	return func() {
		n++
	}
}`)
	fd := findFunc(t, f, "f")
	var lit *ast.FuncLit
	ast.Inspect(fd, func(nd ast.Node) bool {
		if fl, ok := nd.(*ast.FuncLit); ok && lit == nil {
			lit = fl
		}
		return true
	})
	if lit == nil {
		t.Fatal("no function literal found")
	}
	reach := NewReachingDefs(BuildCFG(lit), info)
	var nVar *types.Var
	ast.Inspect(fd, func(nd ast.Node) bool {
		if id, ok := nd.(*ast.Ident); ok && id.Name == "n" {
			if v, ok := info.Defs[id].(*types.Var); ok && nVar == nil {
				nVar = v
			}
		}
		return true
	})
	if nVar == nil {
		t.Fatal("variable n not resolved")
	}
	if reach.Tracked(nVar) {
		t.Fatal("captured variable must stay untracked in the literal's analysis")
	}
	// And the enclosing function's own analysis does track it.
	outer := NewReachingDefs(BuildCFG(fd), info)
	if !outer.Tracked(nVar) {
		t.Fatal("enclosing function must track its own local")
	}
}
