package driver

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Def is one definition site of a function-local variable.
type Def struct {
	// Obj is the defined variable.
	Obj *types.Var
	// Site is the defining node: an *ast.AssignStmt, *ast.IncDecStmt,
	// *ast.ValueSpec, *ast.RangeStmt (per-iteration key/value), or the
	// *ast.Field / *ast.Ident of a parameter for entry definitions.
	Site ast.Node
	// Entry marks parameter/receiver/named-result definitions live at
	// function entry.
	Entry bool
}

// ReachingDefs answers, for every use of a function-local variable, which
// definitions may reach it — classic forward may-analysis over the CFG.
// Variables belonging to enclosing functions (closure captures) and package
// globals are not tracked: DefsOf returns nil for them, which the analyzers
// treat as "shared, assume the worst". Identifiers inside nested function
// literals are likewise untracked (the literal gets its own CFG and
// ReachingDefs when analyzed).
type ReachingDefs struct {
	uses map[*ast.Ident][]Def
	defs map[*types.Var][]Def
}

// NewReachingDefs runs the analysis for cfg against the type information of
// its package.
func NewReachingDefs(cfg *CFG, info *types.Info) *ReachingDefs {
	r := &rdBuilder{
		info:   info,
		out:    &ReachingDefs{uses: map[*ast.Ident][]Def{}, defs: map[*types.Var][]Def{}},
		defIdx: map[*types.Var]map[ast.Node]int{},
		fnPos:  cfg.Fn.Pos(),
		fnEnd:  cfg.Fn.End(),
	}
	r.solve(cfg)
	return r.out
}

// DefsOf returns the definitions that may reach the given use, or nil when
// the identifier is not a tracked local (captured from an enclosing
// function, a global, a field, or inside a nested function literal).
func (r *ReachingDefs) DefsOf(use *ast.Ident) []Def {
	return r.uses[use]
}

// AllDefs returns every recorded definition site of v (nil if untracked).
func (r *ReachingDefs) AllDefs(v *types.Var) []Def {
	return r.defs[v]
}

// Tracked reports whether v is a local of the analyzed function.
func (r *ReachingDefs) Tracked(v *types.Var) bool {
	_, ok := r.defs[v]
	return ok
}

type rdBuilder struct {
	info *types.Info
	out  *ReachingDefs

	// allDefs is the global numbering of definitions; defIdx maps
	// (var, site) to its index.
	allDefs []Def
	defIdx  map[*types.Var]map[ast.Node]int

	// fnPos/fnEnd span the analyzed function: variables declared outside it
	// (closure captures, globals) stay untracked even when assigned inside.
	fnPos, fnEnd token.Pos
}

// defSet is a small bitset over allDefs indices.
type defSet []uint64

func newDefSet(n int) defSet    { return make(defSet, (n+63)/64) }
func (s defSet) has(i int) bool { return s[i/64]&(1<<(i%64)) != 0 }
func (s defSet) add(i int)      { s[i/64] |= 1 << (i % 64) }
func (s defSet) clone() defSet  { c := make(defSet, len(s)); copy(c, s); return c }
func (s defSet) union(o defSet) bool {
	changed := false
	for i := range s {
		if n := s[i] | o[i]; n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

func (r *rdBuilder) solve(cfg *CFG) {
	// Pass 1: number every definition site. Entry defs come from the
	// function signature (receiver, params, named results).
	r.entryDefs(cfg.Fn)
	blockDefs := make([][]int, len(cfg.Blocks))
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			for _, d := range r.nodeDefs(n) {
				blockDefs[blk.Index] = append(blockDefs[blk.Index], r.record(d))
			}
		}
	}
	n := len(r.allDefs)
	if n == 0 {
		return
	}
	// kill[v] = all defs of v.
	killOf := map[*types.Var]defSet{}
	for i, d := range r.allDefs {
		ks, ok := killOf[d.Obj]
		if !ok {
			ks = newDefSet(n)
			killOf[d.Obj] = ks
		}
		ks.add(i)
	}

	// Transfer per block: out = gen ∪ (in − kill), with gen/kill from the
	// ordered event list.
	ins := make([]defSet, len(cfg.Blocks))
	outs := make([]defSet, len(cfg.Blocks))
	for i := range cfg.Blocks {
		ins[i] = newDefSet(n)
		outs[i] = newDefSet(n)
	}
	// Entry block starts with the entry definitions.
	for i, d := range r.allDefs {
		if d.Entry {
			ins[cfg.Entry.Index].add(i)
		}
	}
	transfer := func(blk *Block) defSet {
		cur := ins[blk.Index].clone()
		for _, idx := range blockDefs[blk.Index] {
			d := r.allDefs[idx]
			for i := range cur {
				cur[i] &^= killOf[d.Obj][i]
			}
			cur.add(idx)
		}
		return cur
	}
	// Worklist iteration to fixpoint.
	preds := make([][]*Block, len(cfg.Blocks))
	for _, blk := range cfg.Blocks {
		for _, s := range blk.Succs {
			preds[s.Index] = append(preds[s.Index], blk)
		}
	}
	work := append([]*Block{}, cfg.Blocks...)
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		in := ins[blk.Index]
		for _, p := range preds[blk.Index] {
			in.union(outs[p.Index])
		}
		out := transfer(blk)
		if outs[blk.Index].union(out) {
			work = append(work, blk.Succs...)
		}
	}

	// Pass 2: resolve uses by replaying each block with its final in-set.
	for _, blk := range cfg.Blocks {
		cur := ins[blk.Index].clone()
		for _, node := range blk.Nodes {
			r.resolveUses(node, cur)
			for _, d := range r.nodeDefs(node) {
				idx := r.defIdx[d.Obj][d.Site]
				for i := range cur {
					cur[i] &^= killOf[d.Obj][i]
				}
				cur.add(idx)
			}
		}
	}
}

// record numbers d (idempotently) and registers it in the public def table.
func (r *rdBuilder) record(d Def) int {
	m, ok := r.defIdx[d.Obj]
	if !ok {
		m = map[ast.Node]int{}
		r.defIdx[d.Obj] = m
	}
	if idx, ok := m[d.Site]; ok {
		return idx
	}
	idx := len(r.allDefs)
	r.allDefs = append(r.allDefs, d)
	m[d.Site] = idx
	r.out.defs[d.Obj] = append(r.out.defs[d.Obj], d)
	return idx
}

// entryDefs records the signature-carried definitions of fn.
func (r *rdBuilder) entryDefs(fn ast.Node) {
	var ft *ast.FuncType
	var recv *ast.FieldList
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		ft = fn.Type
		recv = fn.Recv
	case *ast.FuncLit:
		ft = fn.Type
	}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := r.info.Defs[name].(*types.Var); ok {
					r.record(Def{Obj: v, Site: name, Entry: true})
				}
			}
		}
	}
	addFields(recv)
	if ft != nil {
		addFields(ft.Params)
		addFields(ft.Results)
	}
}

// nodeDefs extracts the ordered definitions a single CFG node performs.
// It pattern-matches the node shallowly: definitions inside nested function
// literals belong to the literal's own CFG, not this one.
func (r *rdBuilder) nodeDefs(n ast.Node) []Def {
	var defs []Def
	addIdent := func(id *ast.Ident, site ast.Node) {
		if id == nil || id.Name == "_" {
			return
		}
		obj := r.info.Defs[id]
		if obj == nil {
			obj = r.info.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Pos() >= r.fnPos && v.Pos() <= r.fnEnd {
			defs = append(defs, Def{Obj: v, Site: site})
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				addIdent(id, n)
			}
		}
	case *ast.IncDecStmt:
		if id, ok := n.X.(*ast.Ident); ok {
			addIdent(id, n)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						addIdent(name, vs)
					}
				}
			}
		}
	case *ast.RangeStmt:
		if id, ok := n.Key.(*ast.Ident); ok {
			addIdent(id, n)
		}
		if id, ok := n.Value.(*ast.Ident); ok {
			addIdent(id, n)
		}
	}
	return defs
}

// resolveUses records, for every tracked-variable use inside node, the
// definitions live at that point. Nested function literals are skipped; for
// assignments the pure-LHS identifiers are definitions, not uses (but index
// and selector operands on the LHS are uses).
func (r *rdBuilder) resolveUses(node ast.Node, live defSet) {
	skipLHS := map[*ast.Ident]bool{}
	if as, ok := node.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				skipLHS[id] = true
			}
		}
	}
	// For range statements only the key/value/X expressions belong to this
	// node; the body is its own set of blocks.
	roots := []ast.Node{node}
	if rs, ok := node.(*ast.RangeStmt); ok {
		roots = roots[:0]
		if rs.X != nil {
			roots = append(roots, rs.X)
		}
	}
	for _, root := range roots {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.BlockStmt:
				// Statement nodes only carry their own expressions in this
				// CFG; bodies (if/for/...) are separate blocks.
				return false
			case *ast.Ident:
				if skipLHS[n] {
					return true
				}
				v, ok := r.info.Uses[n].(*types.Var)
				if !ok || v.IsField() {
					return true
				}
				if _, tracked := r.defIdx[v]; !tracked {
					return true
				}
				var ds []Def
				for _, d := range r.out.defs[v] {
					if live.has(r.defIdx[v][d.Site]) {
						ds = append(ds, d)
					}
				}
				r.out.uses[n] = ds
			}
			return true
		})
	}
}
