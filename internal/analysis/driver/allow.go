package driver

import (
	"go/ast"
	"strings"
)

// The //lint:allow escape hatch: a comment of the form
//
//	//lint:allow <analyzer> <justification>
//
// suppresses that analyzer's diagnostics on the comment's own source line
// (trailing comment) and on the line directly below it (standalone comment
// above the flagged statement). The justification is mandatory — a bare
// directive suppresses nothing and is itself reported by
// CheckAllowDirectives, so every exception in the tree carries its reason.
const allowPrefix = "//lint:allow"

// allowKey identifies one suppressed (file line, analyzer) pair.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowSet collects the well-formed allow directives of a package.
func allowSet(pkg *Package) map[allowKey]bool {
	set := map[allowKey]bool{}
	for _, f := range append(append([]*ast.File{}, pkg.Files...), pkg.XTestFiles...) {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, just := parseAllow(c.Text)
				if name == "" || just == "" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				set[allowKey{pos.Filename, pos.Line, name}] = true
				set[allowKey{pos.Filename, pos.Line + 1, name}] = true
			}
		}
	}
	return set
}

// parseAllow splits an allow directive into analyzer name and justification;
// both are empty when the comment is not a directive, and just is empty when
// the justification is missing.
func parseAllow(text string) (name, just string) {
	if !strings.HasPrefix(text, allowPrefix) {
		return "", ""
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
	name, just, _ = strings.Cut(rest, " ")
	return name, strings.TrimSpace(just)
}

// filterAllowed drops diagnostics covered by an allow directive.
func filterAllowed(pkg *Package, diags []Diagnostic) []Diagnostic {
	if len(diags) == 0 {
		return diags
	}
	set := allowSet(pkg)
	out := diags[:0]
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !set[allowKey{pos.Filename, pos.Line, d.Analyzer}] {
			out = append(out, d)
		}
	}
	return out
}

// CheckAllowDirectives reports malformed allow directives (missing analyzer
// name or justification) so the escape hatch cannot silently rot. Call it
// once per package, alongside the analyzer runs.
func CheckAllowDirectives(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range append(append([]*ast.File{}, pkg.Files...), pkg.XTestFiles...) {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				if name, just := parseAllow(c.Text); name == "" || just == "" {
					diags = append(diags, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "allow",
						Message:  "malformed //lint:allow directive: want \"//lint:allow <analyzer> <justification>\"",
					})
				}
			}
		}
	}
	return diags
}
