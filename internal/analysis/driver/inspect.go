package driver

import (
	"go/ast"
	"reflect"
)

// Inspector is a cached preorder traversal of a package's files, mirroring
// golang.org/x/tools/go/ast/inspector: the AST is flattened once and every
// analyzer filters the shared node list by type instead of re-walking the
// tree. Build one per package via Package.Inspector (or Pass.Inspector) so
// the traversal cost is paid once across the whole suite.
type Inspector struct {
	nodes []ast.Node
}

// NewInspector flattens files into a shared preorder node list.
func NewInspector(files []*ast.File) *Inspector {
	in := &Inspector{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n != nil {
				in.nodes = append(in.nodes, n)
			}
			return true
		})
	}
	return in
}

// Preorder calls f for every node whose dynamic type matches one of the
// (typically nil-pointer) exemplars in nodeTypes, in source preorder. An
// empty nodeTypes matches every node.
func (in *Inspector) Preorder(nodeTypes []ast.Node, f func(ast.Node)) {
	if len(nodeTypes) == 0 {
		for _, n := range in.nodes {
			f(n)
		}
		return
	}
	want := make(map[reflect.Type]bool, len(nodeTypes))
	for _, t := range nodeTypes {
		want[reflect.TypeOf(t)] = true
	}
	for _, n := range in.nodes {
		if want[reflect.TypeOf(n)] {
			f(n)
		}
	}
}
