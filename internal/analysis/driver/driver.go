// Package driver is the execution harness behind the lbvet analyzer suite:
// a deliberately small, API-compatible subset of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Reportf) plus the package
// loader and fixture runner that feed it.
//
// The repo builds fully offline with no module dependencies, so the x/tools
// analysis framework is not available; this package reimplements the slice
// of it the suite needs on top of the standard library (go/ast, go/types,
// go/build). Analyzers are written exactly as they would be against
// x/tools — swapping this driver for the real multichecker is a mechanical
// import change, not a rewrite.
package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow
	// directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph rationale shown by lbvet -help.
	Doc string
	// Run executes the check against one package, reporting findings
	// through the pass.
	Run func(*Pass) error
}

// Diagnostic is one finding of an analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries one analyzed package through an Analyzer.Run, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the type-checked files of the package. When the package was
	// loaded with tests, in-package _test.go files are included (use
	// IsTestFile to tell them apart).
	Files []*ast.File
	// XTestFiles are the parsed — not type-checked — files of the external
	// test package (package foo_test), for analyzers that inspect test
	// declarations such as fuzz targets.
	XTestFiles []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info

	pkg   *Package
	diags []Diagnostic
}

// Inspector returns the analyzed package's shared preorder inspector.
func (p *Pass) Inspector() *Inspector { return p.pkg.Inspector() }

// FuncCFG returns the package-cached CFG of fn.
func (p *Pass) FuncCFG(fn ast.Node) *CFG { return p.pkg.FuncCFG(fn) }

// FuncReach returns the package-cached reaching-definitions solution of fn.
func (p *Pass) FuncReach(fn ast.Node) *ReachingDefs { return p.pkg.FuncReach(fn) }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether pos lies in a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Run executes a on pkg and returns the surviving diagnostics sorted by
// position, with //lint:allow suppressions applied.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:   a,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		XTestFiles: pkg.XTestFiles,
		Pkg:        pkg.Types,
		TypesInfo:  pkg.TypesInfo,
		pkg:        pkg,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	diags := filterAllowed(pkg, pass.diags)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
