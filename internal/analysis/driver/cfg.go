package driver

import (
	"go/ast"
	"go/token"
)

// CFG is a per-function control-flow graph at statement granularity, the
// substrate of the dataflow analyzers (shardsafety's write-provenance check,
// hotalloc's cold-path exemption). It covers the statement forms the engine
// code uses — if/else, for, range, switch, type switch, select, labeled
// break/continue, goto, return, panic termination — and deliberately stays a
// pragmatic subset: nested function literals are opaque single nodes (they
// get their own CFG when analyzed), and a type switch's per-clause implicit
// variable is not modeled as a definition.
type CFG struct {
	// Fn is the *ast.FuncDecl or *ast.FuncLit the graph was built from.
	Fn ast.Node
	// Entry is Blocks[0]; execution starts here.
	Entry *Block
	// Exit is the synthetic sink every return (and the fall-off end) feeds.
	Exit *Block
	// Blocks lists all blocks in creation order, including unreachable ones
	// (statements after a return still get definitions recorded).
	Blocks []*Block
}

// Block is one straight-line run of statements. Nodes holds the executed
// statements and, for branch heads, the condition or range expression whose
// evaluation the block performs.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block

	// returns records the ReturnStmts ending in this block, and fallsToExit
	// whether the block reaches Exit by falling off the function end —
	// together they let hotalloc classify normal vs error-only exits.
	Returns     []*ast.ReturnStmt
	FallsToExit bool
	// Panics marks a block terminated by a builtin panic call.
	Panics bool
}

// BuildCFG constructs the CFG of fn (a *ast.FuncDecl or *ast.FuncLit).
// Functions without a body (externally declared) yield a graph whose entry
// falls straight through to exit.
func BuildCFG(fn ast.Node) *CFG {
	b := &cfgBuilder{cfg: &CFG{Fn: fn}, labels: map[string]*labelTargets{}, labelBlocks: map[string]*Block{}}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = &Block{Index: -1}
	b.cur = b.cfg.Entry

	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}
	if body != nil {
		b.stmts(body.List)
	}
	if b.cur != nil {
		b.cur.FallsToExit = true
		b.edge(b.cur, b.cfg.Exit)
	}
	for _, g := range b.gotos {
		if target, ok := b.labelBlocks[g.label]; ok {
			b.edge(g.from, target)
		}
	}
	b.cfg.Exit.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	return b.cfg
}

// labelTargets holds the break/continue destinations a label resolves to.
type labelTargets struct {
	brk, cont *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	cfg *CFG
	cur *Block // nil after a terminating statement (unreachable code starts a fresh block)

	// breaks/conts are the innermost-last stacks of unlabeled targets.
	breaks, conts []*Block
	labels        map[string]*labelTargets
	labelBlocks   map[string]*Block
	gotos         []pendingGoto
	// pendingLabel names the label attached to the next loop/switch built.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// use returns the current block, materializing a fresh unreachable one after
// a terminator so trailing statements still record their definitions.
func (b *cfgBuilder) use() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) append(n ast.Node) {
	if n != nil {
		blk := b.use()
		blk.Nodes = append(blk.Nodes, n)
	}
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)
	case *ast.IfStmt:
		b.buildIf(s)
	case *ast.ForStmt:
		b.buildFor(s, b.takeLabel())
	case *ast.RangeStmt:
		b.buildRange(s, b.takeLabel())
	case *ast.SwitchStmt:
		b.append(s.Init)
		b.append(s.Tag)
		b.buildCases(s.Body.List, b.takeLabel(), true)
	case *ast.TypeSwitchStmt:
		b.append(s.Init)
		b.append(s.Assign)
		b.buildCases(s.Body.List, b.takeLabel(), true)
	case *ast.SelectStmt:
		b.buildCases(s.Body.List, b.takeLabel(), false)
	case *ast.LabeledStmt:
		lb := b.newBlock()
		b.edge(b.use(), lb)
		b.cur = lb
		b.labelBlocks[s.Label.Name] = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.ReturnStmt:
		blk := b.use()
		blk.Nodes = append(blk.Nodes, s)
		blk.Returns = append(blk.Returns, s)
		b.edge(blk, b.cfg.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		b.buildBranch(s)
	default:
		// Assignments, declarations, expression statements, go, defer, send,
		// incdec, empty: straight-line nodes. A statement that is a builtin
		// panic call additionally terminates the block.
		b.append(s)
		if isPanicStmt(s) {
			blk := b.use()
			blk.Panics = true
			b.edge(blk, b.cfg.Exit)
			b.cur = nil
		}
	}
}

// takeLabel consumes the label attached to the statement being built, if any.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) buildIf(s *ast.IfStmt) {
	b.append(s.Init)
	b.append(s.Cond)
	head := b.use()
	join := b.newBlock()

	then := b.newBlock()
	b.edge(head, then)
	b.cur = then
	b.stmts(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, join)
	}

	if s.Else != nil {
		els := b.newBlock()
		b.edge(head, els)
		b.cur = els
		b.stmt(s.Else)
		if b.cur != nil {
			b.edge(b.cur, join)
		}
	} else {
		b.edge(head, join)
	}
	b.cur = join
}

func (b *cfgBuilder) buildFor(s *ast.ForStmt, label string) {
	b.append(s.Init)
	head := b.newBlock()
	b.edge(b.use(), head)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
	}
	exit := b.newBlock()
	if s.Cond != nil {
		b.edge(head, exit)
	}

	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		post.Nodes = append(post.Nodes, s.Post)
		b.edge(post, head)
		cont = post
	}

	b.pushTargets(exit, cont, label)
	body := b.newBlock()
	b.edge(head, body)
	b.cur = body
	b.stmts(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, cont)
	}
	b.popTargets(label, true)
	b.cur = exit
}

func (b *cfgBuilder) buildRange(s *ast.RangeStmt, label string) {
	head := b.newBlock()
	b.edge(b.use(), head)
	// The RangeStmt node in the head stands for the per-iteration key/value
	// assignment and the range expression evaluation.
	head.Nodes = append(head.Nodes, s)
	exit := b.newBlock()
	b.edge(head, exit)

	b.pushTargets(exit, head, label)
	body := b.newBlock()
	b.edge(head, body)
	b.cur = body
	b.stmts(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.popTargets(label, true)
	b.cur = exit
}

// buildCases wires switch/type-switch/select clause bodies: each clause is a
// successor of the head block; bodies flow to the join; fallthrough chains to
// the next clause. For switches without a default the head also reaches the
// join directly.
func (b *cfgBuilder) buildCases(clauses []ast.Stmt, label string, isSwitch bool) {
	head := b.use()
	join := b.newBlock()

	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
	}
	hasDefault := false
	b.pushTargets(join, nil, label)
	for i, clause := range clauses {
		var body []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				blocks[i].Nodes = append(blocks[i].Nodes, e)
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				blocks[i].Nodes = append(blocks[i].Nodes, c.Comm)
			}
			body = c.Body
		}
		b.cur = blocks[i]
		// Peel a trailing fallthrough: it transfers to the next clause body.
		fallsThrough := false
		if n := len(body); isSwitch && n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				body = body[:n-1]
			}
		}
		b.stmts(body)
		if b.cur != nil {
			if fallsThrough && i+1 < len(blocks) {
				b.edge(b.cur, blocks[i+1])
			} else {
				b.edge(b.cur, join)
			}
		}
	}
	b.popTargets(label, false)
	if !hasDefault || !isSwitch {
		// A select without default blocks until a comm fires, but for the
		// purposes of the graph the join is only reachable through a clause;
		// keep the head→join edge off only when a default guarantees entry.
		if !hasDefault {
			b.edge(head, join)
		}
	}
	b.cur = join
}

// pushTargets registers break/continue destinations. cont is nil for
// switch/select, whose break target does not shadow the enclosing loop's
// continue target.
func (b *cfgBuilder) pushTargets(brk, cont *Block, label string) {
	b.breaks = append(b.breaks, brk)
	if cont != nil {
		b.conts = append(b.conts, cont)
	}
	if label != "" {
		b.labels[label] = &labelTargets{brk: brk, cont: cont}
	}
}

func (b *cfgBuilder) popTargets(label string, hadCont bool) {
	b.breaks = b.breaks[:len(b.breaks)-1]
	if hadCont {
		b.conts = b.conts[:len(b.conts)-1]
	}
	if label != "" {
		delete(b.labels, label)
	}
}

func (b *cfgBuilder) buildBranch(s *ast.BranchStmt) {
	blk := b.use()
	blk.Nodes = append(blk.Nodes, s)
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			if t, ok := b.labels[s.Label.Name]; ok {
				b.edge(blk, t.brk)
			}
		} else if n := len(b.breaks); n > 0 {
			b.edge(blk, b.breaks[n-1])
		}
	case token.CONTINUE:
		if s.Label != nil {
			if t, ok := b.labels[s.Label.Name]; ok && t.cont != nil {
				b.edge(blk, t.cont)
			}
		} else if n := len(b.conts); n > 0 {
			b.edge(blk, b.conts[n-1])
		}
	case token.GOTO:
		if s.Label != nil {
			b.gotos = append(b.gotos, pendingGoto{blk, s.Label.Name})
		}
	case token.FALLTHROUGH:
		// Handled structurally by buildCases; a stray one falls through to
		// nothing.
	}
	b.cur = nil
}

// isPanicStmt reports whether s is a statement-level call to builtin panic.
func isPanicStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
