package driver

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// RunFixture is the analysistest-style harness: it loads the package in
// dir (tests included), runs a, and checks the diagnostics against the
// `// want "regexp"` expectations in the fixture sources. Every diagnostic
// must be matched by a want on its line and every want must be matched by a
// diagnostic; //lint:allow suppression applies, so fixtures can exercise
// the escape hatch too.
func RunFixture(t testing.TB, l *Loader, dir string, a *Analyzer) {
	t.Helper()
	pkg, err := l.LoadDir(dir, true)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := Run(a, pkg)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatalf("fixture %s: %v", dir, err)
	}
	matched := make([]bool, len(wants))
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		ok := false
		for i, w := range wants {
			if !matched[i] && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// want is one expectation: a diagnostic matching re on (file, line).
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants scans the fixture comments for `// want "re"` markers (one or
// more quoted regexps per comment).
func collectWants(pkg *Package) ([]want, error) {
	var wants []want
	for _, f := range append(append([]*ast.File{}, pkg.Files...), pkg.XTestFiles...) {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, lit := range splitQuoted(rest) {
					s, err := strconv.Unquote(lit)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want literal %s: %w", pos.Filename, pos.Line, lit, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp: %w", pos.Filename, pos.Line, err)
					}
					wants = append(wants, want{pos.Filename, pos.Line, re})
				}
			}
		}
	}
	return wants, nil
}

// splitQuoted splits `"a" "b"` into its Go string literals (double- or
// back-quoted), tolerating surrounding whitespace.
func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			if end >= len(s) {
				return append(out, s)
			}
			out = append(out, s[:end+1])
			s = s[end+1:]
		case '`':
			end := strings.Index(s[1:], "`")
			if end < 0 {
				return append(out, s)
			}
			out = append(out, s[:end+2])
			s = s[end+2:]
		default:
			return append(out, strconv.Quote(s))
		}
	}
}
