package driver

import (
	"go/ast"
	"go/types"
	"strings"
)

// lbvet directives annotate contracts the dataflow analyzers enforce:
//
//	//lbvet:hotpath [note]      — on a function declaration's doc comment:
//	                              the function must be allocation-free
//	                              (checked by hotalloc).
//	//lbvet:doublebuffer [note] — on a struct field holding the write half
//	                              of a double-buffered pair: shardsafety
//	                              accepts writes through it at any index,
//	                              because unique ownership is guaranteed by
//	                              the buffer protocol, not the index range.
//
// Unknown //lbvet: directives are reported by CheckDirectives so typos
// cannot silently drop a contract.
const directivePrefix = "//lbvet:"

var knownDirectives = map[string]bool{
	"hotpath":      true,
	"doublebuffer": true,
}

// parseDirective returns the directive name ("" when the comment is not an
// lbvet directive).
func parseDirective(text string) string {
	rest, ok := strings.CutPrefix(text, directivePrefix)
	if !ok {
		return ""
	}
	name, _, _ := strings.Cut(rest, " ")
	return strings.TrimSpace(name)
}

// HasDirective reports whether the comment group carries the named lbvet
// directive.
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if parseDirective(c.Text) == name {
			return true
		}
	}
	return false
}

// FieldsWithDirective collects the struct-field objects of files that carry
// the named directive in their doc or trailing line comment.
func FieldsWithDirective(info *types.Info, files []*ast.File, name string) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !HasDirective(field.Doc, name) && !HasDirective(field.Comment, name) {
					continue
				}
				for _, id := range field.Names {
					if v, ok := info.Defs[id].(*types.Var); ok {
						out[v] = true
					}
				}
			}
			return true
		})
	}
	return out
}

// CheckDirectives reports unknown //lbvet: directives. Run it once per
// package alongside CheckAllowDirectives.
func CheckDirectives(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range append(append([]*ast.File{}, pkg.Files...), pkg.XTestFiles...) {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				if name := parseDirective(c.Text); !knownDirectives[name] {
					diags = append(diags, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "directive",
						Message:  "unknown //lbvet: directive \"" + name + "\" (known: hotpath, doublebuffer)",
					})
				}
			}
		}
	}
	return diags
}
