package specgood

import "testing"

func FuzzFromSpec(f *testing.F) {
	f.Add("rule:1")
	f.Fuzz(func(t *testing.T, s string) {
		r, err := FromSpec(s)
		if err != nil {
			return
		}
		back, err := FromSpec(r.Name())
		if err != nil {
			t.Fatalf("round-trip of %q failed: %v", s, err)
		}
		if back.Name() != r.Name() {
			t.Fatalf("round-trip of %q changed canonical spec: %q vs %q", s, back.Name(), r.Name())
		}
	})
}
