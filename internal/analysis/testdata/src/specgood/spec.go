// Package specgood is a passing lbvet fixture for the specroundtrip
// analyzer: the parsed type renders its canonical spec via Name() and the
// package carries a fuzz round-trip target.
package specgood

import (
	"fmt"
	"strconv"
	"strings"
)

// Rule is a spec-parsed value; Name renders its canonical spec.
type Rule struct{ n int }

// Name returns the canonical spec string the rule re-parses from.
func (r *Rule) Name() string { return fmt.Sprintf("rule:%d", r.n) }

// FromSpec parses "rule:<n>".
func FromSpec(spec string) (*Rule, error) {
	rest, ok := strings.CutPrefix(spec, "rule:")
	if !ok {
		return nil, fmt.Errorf("specgood: bad spec %q", spec)
	}
	n, err := strconv.Atoi(rest)
	if err != nil {
		return nil, fmt.Errorf("specgood: bad spec %q: %v", spec, err)
	}
	return &Rule{n: n}, nil
}
