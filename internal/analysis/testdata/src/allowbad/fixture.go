// Package allowbad is a fixture for driver.CheckAllowDirectives: malformed
// //lint:allow directives (missing justification, missing analyzer name)
// must themselves be reported, and a malformed directive must not suppress
// the diagnostic it sits next to.
package allowbad

func missingJustification(a, b float64) bool {
	//lint:allow floateq
	return a == b // the bad directive above does NOT suppress this
}

func missingEverything(a, b float64) bool {
	//lint:allow
	return a != b
}
