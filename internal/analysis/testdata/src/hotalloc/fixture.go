// Package hotalloc is an lbvet analysistest fixture: each // want comment
// pins a diagnostic of the hotalloc analyzer on a //lbvet:hotpath function,
// and the undecorated declarations pin what must stay clean — including
// allocation in unannotated functions and on error-terminating paths.
package hotalloc

import "fmt"

func sink(v any) { _ = v }

//lbvet:hotpath fixture
func hotAppend(xs []int, v int) []int {
	return append(xs, v) // want `append in //lbvet:hotpath hotAppend`
}

//lbvet:hotpath fixture
func hotMake(n int) {
	buf := make([]float64, n) // want `make in //lbvet:hotpath hotMake`
	_ = buf
}

//lbvet:hotpath fixture
func hotClosure(xs []float64) {
	f := func(i int) float64 { return xs[i] } // want `closure literal in //lbvet:hotpath hotClosure`
	_ = f
}

//lbvet:hotpath fixture
func hotFmt(v int) {
	fmt.Println(v) // want `fmt\.Println in //lbvet:hotpath hotFmt`
}

//lbvet:hotpath fixture
func hotMapRange(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration in //lbvet:hotpath hotMapRange`
		total += v
	}
	return total
}

//lbvet:hotpath fixture
func hotLiteral() {
	_ = []int{1, 2, 3} // want `slice literal in //lbvet:hotpath hotLiteral`
}

//lbvet:hotpath fixture
func hotBoxArg(v int) {
	sink(v) // want `int value boxed into interface`
}

//lbvet:hotpath fixture
func hotBoxAssign(v float64) {
	var i any
	i = v // want `float64 value boxed into interface`
	_ = i
}

// hotPointerArg stays clean: pointer-shaped values fill the interface word
// without a heap box.
//
//lbvet:hotpath fixture
func hotPointerArg(p *int) {
	sink(p)
}

// hotGuarded stays clean: the fmt.Errorf sits in a block from which every
// path terminates in a failure return, so it runs per misconfiguration, not
// per round.
//
//lbvet:hotpath fixture
func hotGuarded(xs []float64, n int) error {
	if len(xs) != n {
		return fmt.Errorf("hotalloc fixture: %d slots for %d nodes", len(xs), n)
	}
	for i := range xs {
		xs[i] = 0
	}
	return nil
}

// hotErrPropagate stays clean: the bare error return is guarded by its own
// err != nil check.
//
//lbvet:hotpath fixture
func hotErrPropagate(xs []float64, n int) error {
	if err := validate(xs, n); err != nil {
		return err
	}
	for i := range xs {
		xs[i] = 1
	}
	return nil
}

func validate(xs []float64, n int) error {
	if len(xs) != n {
		return fmt.Errorf("hotalloc fixture: bad shape")
	}
	return nil
}

// hotPanicPath stays clean: the formatting feeds a panic, and the CFG cuts
// after a panic statement.
//
//lbvet:hotpath fixture
func hotPanicPath(ok bool, i int) {
	if !ok {
		panic(fmt.Sprintf("hotalloc fixture: broken invariant at %d", i))
	}
}

// coldAppend stays clean: no //lbvet:hotpath annotation, no contract.
func coldAppend(xs []int) []int {
	return append(xs, len(xs))
}
