// Package nodeterminism is an lbvet analysistest fixture: each // want
// comment pins a diagnostic of the nodeterminism analyzer, and the
// undecorated declarations pin what must stay clean.
package nodeterminism

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want `call to time\.Now`
	return time.Since(start) // want `call to time\.Since`
}

func globalRand() float64 {
	return rand.Float64() // want `global rand\.Float64`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand\.Shuffle`
}

// seededRand is the blessed shape: an explicit source, no global state.
func seededRand(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

func mapAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside a range over a map`
	}
	return keys
}

// mapAppendSorted is the canonical deterministic pattern: collect, then
// sort before use.
func mapAppendSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func mapFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation into "sum"`
	}
	return sum
}

// mapIntSum is order-independent: integer addition commutes exactly.
func mapIntSum(m map[string]int) int {
	var n int
	for _, v := range m {
		n += v
	}
	return n
}

func mapEmit(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `call to Printf inside a range over a map`
	}
}

func mapSend(m map[string]int, ch chan<- int) {
	for _, v := range m {
		ch <- v // want `channel send inside a range over a map`
	}
}

// mapToMap is order-independent: the destination is itself unordered.
func mapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// allowEscape pins the //lint:allow escape hatch.
func allowEscape(m map[string]int) []string {
	var keys []string
	for k := range m {
		//lint:allow nodeterminism fixture exercises the escape hatch
		keys = append(keys, k)
	}
	return keys
}
