// Package shardsafety is an lbvet analysistest fixture: each // want
// comment pins a diagnostic of the shardsafety analyzer, and the
// undecorated pass bodies pin the ownership shapes that must stay clean.
package shardsafety

type engine struct {
	offsets []int32
	x       []float64
	flows   []float64
	minT    []float64
	cursor  int
}

type dbuf struct {
	//lbvet:doublebuffer exact antisymmetry gives every slot exactly one writer per round
	next []float64
	mate []int32
}

// run stands in for shard.Layout.Run: any func with the (s, lo, hi int)
// shape is a pass body whether or not it reaches the real scheduler.
func run(f func(s, lo, hi int)) { f(0, 0, 0) }

// passNodeRange is the canonical clean kernel: every write is indexed by the
// blessed node-range loop variable or the shard slot.
func (e *engine) passNodeRange(s, lo, hi int) {
	local := 0.0
	for i := lo; i < hi; i++ {
		e.x[i] = 0
		local += e.x[i]
	}
	e.minT[s] = local
}

// passArcRange exercises the arc-range blessing: the bounds share the base
// and the row index is node-range.
func (e *engine) passArcRange(s, lo, hi int) {
	for i := lo; i < hi; i++ {
		for a := e.offsets[i]; a < e.offsets[i+1]; a++ {
			e.flows[a] = 0
		}
	}
}

// passReplay exercises the stored-index replay pattern: indices stored into
// a local slice were all provably in-range, so reading them back keeps the
// proof.
func (e *engine) passReplay(s, lo, hi int) {
	buf := make([]int, hi-lo)
	n := 0
	for i := lo; i < hi; i++ {
		buf[n] = i
		n++
	}
	for k := 0; k < n; k++ {
		e.x[buf[k]] = 0
	}
}

// passDoubleBuffer writes through a //lbvet:doublebuffer field at an index
// no range proof covers — the buffer protocol owns the slot.
func (d *dbuf) passDoubleBuffer(s, lo, hi int) {
	for a := lo; a < hi; a++ {
		d.next[d.mate[a]] = 1
	}
}

// passConstIndex writes a fixed slot of shared state from every shard.
func (e *engine) passConstIndex(s, lo, hi int) {
	e.x[0] = 1 // want `write to shared e\.x is not provably inside this shard's range`
}

// passSharedIndex indexes shared state by a value loaded from shared state.
func (e *engine) passSharedIndex(s, lo, hi int) {
	e.x[e.cursor] = 1 // want `write to shared e\.x is not provably inside this shard's range`
}

// passTamperedLoop re-defines the blessed loop variable mid-body, breaking
// the range proof for the write that follows.
func (e *engine) passTamperedLoop(s, lo, hi int) {
	for i := lo; i < hi; i++ {
		i = e.cursor
		e.x[i] = 1 // want `write to shared e\.x is not provably inside this shard's range`
	}
}

// passFieldWrite assigns a shared scalar field from every shard.
func (e *engine) passFieldWrite(s, lo, hi int) {
	e.cursor = lo // want `write to shared field e\.cursor from a pass body`
}

// badCapture accumulates into a variable captured from the enclosing
// function: every shard's worker races on it.
func badCapture(e *engine) float64 {
	total := 0.0
	run(func(s, lo, hi int) {
		for i := lo; i < hi; i++ {
			total += e.x[i] // want `write to captured variable "total" from a pass body`
		}
	})
	return total
}

// passCopyBodies pins the copy rule: a whole-slice copy into shared state
// has no shard bound, the [lo:hi] window does.
func (e *engine) passCopyBodies(src []float64) {
	run(func(s, lo, hi int) {
		copy(e.x[lo:hi], src)
	})
	run(func(s, lo, hi int) {
		copy(e.x, src) // want `copy into shared e\.x from a pass body has no provable shard bound`
	})
}

// badGo launches goroutines that capture the loop variable instead of taking
// it as an argument.
func badGo(xs []float64, out chan<- float64) {
	for i := 0; i < len(xs); i++ {
		go func() {
			out <- xs[i] // want `loop variable "i" captured by a goroutine launched in the loop`
		}()
	}
}

// goodGo passes iteration state explicitly — the blessed spawn shape.
func goodGo(xs []float64, out chan<- float64) {
	for i := 0; i < len(xs); i++ {
		go func(i int) {
			out <- xs[i]
		}(i)
	}
}
