// Package telemetryread is an lbvet analysistest fixture: each // want
// comment pins a diagnostic of the telemetryread analyzer, and the
// undecorated declarations pin the write-only surface that must stay
// clean. The fixture imports the real telemetry package so the opacity
// test runs against the genuine handle types.
package telemetryread

import (
	"io"

	"diffusionlb/internal/telemetry"
)

// register is the blessed preregistration shape: every result is an opaque
// handle, so nothing here is a read-back.
func register(reg *telemetry.Registry) (*telemetry.Counter, *telemetry.Gauge, *telemetry.Histogram) {
	c := reg.Counter("fixture_ops_total", "operations")
	g := reg.Gauge("fixture_depth", "queue depth")
	h := reg.Histogram("fixture_seconds", "latency", telemetry.DurationBuckets())
	return c, g, h
}

// record is the blessed hot-path shape: recording methods return nothing.
func record(c *telemetry.Counter, g *telemetry.Gauge, h *telemetry.Histogram) {
	c.Inc()
	c.Add(3)
	g.Set(1.5)
	g.Add(-0.5)
	h.Observe(0.25)
	sw := h.Start() // Stopwatch is an opaque handle, not a read-back.
	sw.Stop()
}

// probes: constructors and every recording method are write-only.
func probes(reg *telemetry.Registry, tr *telemetry.Trace) {
	rp := telemetry.NewRunProbe(reg, tr)
	rp.RoundCompleted(1, 0.5, 0.25, 4, 0)
	rp.Inject(1, 100)
	ap := telemetry.NewActorProbe(reg, tr, 4, false)
	ap.LinkSent(1, 0, 1)
	ap.SetInFlight(12)
	sp := telemetry.NewSweepProbe(reg, tr)
	sp.Begin(10)
	sp.CellDone(1, 10)
	tr.Emit(telemetry.EvRound, 1, 0, 0, 0)
}

// readBacks is what the contract forbids in engine code: any call whose
// result leaks telemetry state back to the caller.
func readBacks(reg *telemetry.Registry, tr *telemetry.Trace, c *telemetry.Counter, g *telemetry.Gauge, w io.Writer) {
	_ = c.Value()                       // want `telemetry read-back: Value returns int64`
	_ = g.Value()                       // want `telemetry read-back: Value returns float64`
	_ = tr.Seq()                        // want `telemetry read-back: Seq returns uint64`
	_ = tr.Events()                     // want `telemetry read-back: Events returns \[\]`
	_ = telemetry.TakeSnapshot(reg, tr) // want `telemetry read-back: TakeSnapshot returns`
	_ = reg.WritePrometheus(w)          // want `telemetry read-back: WritePrometheus returns error`
}

// branchOnTelemetry is the failure mode the analyzer exists for: a
// trajectory decision coupled to an observability read.
func branchOnTelemetry(c *telemetry.Counter) int {
	if c.Value() > 100 { // want `telemetry read-back: Value returns int64`
		return 1
	}
	return 0
}

// allowEscapeHatch: a justified //lint:allow suppresses the diagnostic,
// the same escape hatch every other analyzer honours.
func allowEscapeHatch(c *telemetry.Counter) int64 {
	//lint:allow telemetryread fixture exercises the suppression path
	return c.Value()
}
