// Package specbad is a failing lbvet fixture for the specroundtrip
// analyzer: the parser's result type has no Name() method, and the package
// has no Fuzz* test.
package specbad

import "errors"

// Config deliberately lacks a Name method.
type Config struct{ N int }

func FromSpec(spec string) (*Config, error) { // want `has no Name\(\) string method` `no Fuzz\* test`
	if spec == "" {
		return nil, errors.New("specbad: empty spec")
	}
	return &Config{N: len(spec)}, nil
}
