// Package goroutineleak is an lbvet analysistest fixture for the
// goroutineleak analyzer: bare go statements are flagged, the two blessed
// shapes (parallelFor, context-carrying functions) are not.
package goroutineleak

import (
	"context"
	"sync"
)

func bare() {
	go func() {}() // want `go statement in bare`
}

func bareInClosure() {
	run := func() {
		go helper() // want `go statement in bareInClosure`
	}
	run()
}

func helper() {}

// withCtx is allowed: cancellation is explicit in the signature.
func withCtx(ctx context.Context) {
	go func() { <-ctx.Done() }()
}

// ctxClosure is allowed: the literal itself carries the context.
func ctxClosure() func(context.Context) {
	return func(ctx context.Context) {
		go func() { <-ctx.Done() }()
	}
}

// parallelFor is the blessed fan-out primitive: the WaitGroup joins every
// goroutine before it returns.
func parallelFor(n int, body func(i int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body(i)
		}(i)
	}
	wg.Wait()
}

// allowEscape pins the //lint:allow escape hatch.
func allowEscape() {
	//lint:allow goroutineleak fixture exercises the escape hatch
	go helper()
}

// Run is NOT blessed here: the Run blessing is scoped to the shard and
// actor engine packages, so naming a helper Run in any other package does
// not buy a spawn license.
func Run(body func()) {
	go body() // want `go statement in Run`
}
