// Package actorrun is the passing goroutineleak fixture for the actor
// runtime's blessing: this directory stands in for
// diffusionlb/internal/actor, where Run is a blessed fan-out primitive —
// its spawned goroutines all report to a done channel the caller drains
// before returning. Helpers in the same package stay bound by the
// contract.
package actorrun

// Runtime mimics the actor runtime's shape: Run spawns one goroutine per
// actor and joins them via the done channel.
type Runtime struct {
	actors int
	done   chan struct{}
}

// Run is blessed by package path: every spawned goroutine signals done,
// and the loop below drains exactly that many signals before returning.
func (r *Runtime) Run(body func(a int)) {
	for a := 0; a < r.actors; a++ {
		go func(a int) {
			defer func() { r.done <- struct{}{} }()
			body(a)
		}(a)
	}
	for a := 0; a < r.actors; a++ {
		<-r.done
	}
}

// leak is an ordinary helper in the blessed package: the package blessing
// covers Run only, not every function in the package.
func (r *Runtime) leak(body func()) {
	go body() // want `go statement in leak`
}
