package checkpointsync

type goodCp struct {
	Round int
	Loads []float64
}

func (g *good) Checkpoint() goodCp {
	cp := goodCp{Round: g.round, Loads: make([]float64, len(g.loads))}
	copy(cp.Loads, g.loads)
	return cp
}

func (g *good) Restore(cp goodCp) error {
	g.round = cp.Round
	copy(g.loads, cp.Loads)
	return nil
}

type badCp struct {
	Round int
	Sent  int64
}

// Checkpoint captures sent but forgets drift entirely.
func (b *bad) Checkpoint() badCp {
	return badCp{Round: b.round, Sent: b.sent}
}

// Restore forgets both drift and sent.
func (b *bad) Restore(cp badCp) error {
	b.round = cp.Round
	return nil
}
