// Package checkpointsync is an lbvet analysistest fixture. It is
// deliberately split across two files — the types and their mutating Step
// methods live here, the Checkpoint/Restore pairs in checkpoint.go — so the
// fixture also exercises cross-file type resolution in the driver.
package checkpointsync

// good is the clean shape: every mutated field is covered by both methods,
// and the per-round scratch is justified at its declaration.
type good struct {
	round   int
	loads   []float64
	scratch []float64 //lint:allow checkpointsync per-round scratch, rebuilt by Step before any read
}

func (g *good) Step() {
	g.round++
	for i := range g.scratch {
		g.scratch[i] = 0
	}
	for i := range g.loads {
		g.loads[i] += g.scratch[i]
	}
}

// bad mutates two fields the checkpoint cycle loses.
type bad struct {
	round int
	drift float64 // want `field bad\.drift is mutated during the run \(by Step\) but not covered by Checkpoint and Restore`
	sent  int64   // want `field bad\.sent is mutated during the run \(by Step\) but not covered by Restore`
}

func (b *bad) Step() {
	b.round++
	b.drift += 0.5
	b.sent++
}

// uncovered has mutating methods but no Checkpoint/Restore pair, so no
// contract binds it.
type uncovered struct {
	hits int
}

func (u *uncovered) Step() { u.hits++ }
