// Package floateq is an lbvet analysistest fixture for the floateq
// analyzer: raw ==/!= on floats is flagged, comparisons against exact
// integral constants and the //lint:allow escape hatch are not.
package floateq

func equalF(a, b float64) bool {
	return a == b // want `== on floating-point operands`
}

func notEqualF(a, b float32) bool {
	return a != b // want `!= on floating-point operands`
}

// sentinelZero is exempt: 0 is exactly representable and comparing against
// it is the idiomatic "unset" check.
func sentinelZero(a float64) bool {
	return a == 0
}

// sentinelOne is exempt in either operand order.
func sentinelOne(a float64) bool {
	return 1 == a
}

func halfCompare(a float64) bool {
	return a == 0.5 // want `== on floating-point operands`
}

// intCompare is out of scope: integer equality is exact.
func intCompare(a, b int) bool {
	return a == b
}

func switchFloat(a float64) int {
	switch a { // want `switch over a floating-point value`
	case 1.5:
		return 1
	}
	return 0
}

// switchInt is out of scope.
func switchInt(a int) int {
	switch a {
	case 1:
		return 1
	}
	return 0
}

// allowEscape pins the //lint:allow escape hatch.
func allowEscape(a, b float64) bool {
	//lint:allow floateq fixture exercises the escape hatch
	return a == b
}
