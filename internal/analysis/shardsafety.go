package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"diffusionlb/internal/analysis/driver"
)

// ShardSafety proves that the parallel engine kernels never write across
// shard boundaries. A pass body — any function or literal with the shard.Run
// signature (s, lo, hi int) — runs concurrently with every other shard, so a
// write to a shared slice is only safe when the index is provably inside the
// shard's own range. The analyzer accepts exactly the ownership shapes the
// engines use:
//
//   - node-range indices: the variable of a `for i := lo; i < hi; i++` loop;
//   - arc-range indices: the variable of a `for a := P[i]; a < P[i+1]; a++`
//     loop whose bound expressions share the same base and whose row index i
//     is itself node-range;
//   - the shard slot s (per-shard reduction slots like minT[s]);
//   - per-shard scratch reached through an s-indexed chain (sh[s].vals);
//   - function-local slices (freshly made in the body);
//   - indices read back from a scratch slice whose stores were all in-range
//     (the arcIdx replay pattern of the fused round kernel);
//   - fields annotated //lbvet:doublebuffer, whose unique ownership comes
//     from the buffer protocol (exact IEEE antisymmetry pairs both arc
//     directions), not from an index range.
//
// Everything else — a constant index, an index loaded from shared state, a
// captured scalar, an unbounded copy into a shared slice — is a cross-shard
// race waiting for a work-stealing reschedule, and is reported. The analyzer
// also flags loop variables captured by goroutine literals anywhere in
// engine code: the spawn must take iteration state as arguments so the
// handoff is explicit.
var ShardSafety = &driver.Analyzer{
	Name: "shardsafety",
	Doc: "writes to shared slices inside (s, lo, hi int) pass bodies must be " +
		"provably shard-local (node/arc range, [s] slot, scratch, or //lbvet:doublebuffer)",
	Run: runShardSafety,
}

func runShardSafety(pass *driver.Pass) error {
	dblBuf := driver.FieldsWithDirective(pass.TypesInfo, pass.Files, "doublebuffer")
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLoopVarEscape(pass, fd.Body)
			if isPassBodyType(pass, fd.Type) {
				newPassBodyCheck(pass, fd, fd.Type, dblBuf).check()
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok && isPassBodyType(pass, fl.Type) {
					newPassBodyCheck(pass, fl, fl.Type, dblBuf).check()
				}
				return true
			})
		}
	}
	return nil
}

// isPassBodyType reports whether ft is the shard.Run pass-body shape:
// exactly three int parameters whose last two are named lo and hi.
func isPassBodyType(pass *driver.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	var names []*ast.Ident
	for _, field := range ft.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		b, ok := t.(*types.Basic)
		if !ok || b.Kind() != types.Int {
			return false
		}
		names = append(names, field.Names...)
	}
	return len(names) == 3 && names[1].Name == "lo" && names[2].Name == "hi"
}

// provKind classifies how an index is known to be shard-local.
type provKind int

const (
	provNode provKind = iota // node-range loop variable (or lo itself)
	provArc                  // arc-range loop variable
)

// blessing records one blessed loop variable: its kind and the only
// definition sites (init and post) a use may see to stay provably in-range.
type blessing struct {
	kind  provKind
	sites map[ast.Node]bool
}

// sliceClass classifies the base of an indexed write.
type sliceClass int

const (
	classShared    sliceClass = iota // shared across shards: index must be proven
	classLocal                       // function-local allocation
	classScratch                     // per-shard scratch behind an [s] chain
	classDoubleBuf                   // //lbvet:doublebuffer unique-ownership field
)

type passBodyCheck struct {
	pass   *driver.Pass
	fn     ast.Node
	body   *ast.BlockStmt
	reach  *driver.ReachingDefs
	dblBuf map[*types.Var]bool

	sObj, loObj, hiObj *types.Var
	blessed            map[*types.Var]*blessing
	// storedOK marks local/scratch slices all of whose element stores were
	// provably in-range indices, so reading an index back out of them keeps
	// the proof (the arcIdx replay pattern).
	storedOK map[*types.Var]bool
}

func newPassBodyCheck(pass *driver.Pass, fn ast.Node, ft *ast.FuncType, dblBuf map[*types.Var]bool) *passBodyCheck {
	c := &passBodyCheck{
		pass:     pass,
		fn:       fn,
		reach:    pass.FuncReach(fn),
		dblBuf:   dblBuf,
		blessed:  map[*types.Var]*blessing{},
		storedOK: map[*types.Var]bool{},
	}
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		c.body = fn.Body
	case *ast.FuncLit:
		c.body = fn.Body
	}
	var names []*ast.Ident
	for _, field := range ft.Params.List {
		names = append(names, field.Names...)
	}
	obj := func(id *ast.Ident) *types.Var {
		v, _ := pass.TypesInfo.Defs[id].(*types.Var)
		return v
	}
	c.sObj, c.loObj, c.hiObj = obj(names[0]), obj(names[1]), obj(names[2])
	return c
}

func (c *passBodyCheck) check() {
	c.collectBlessings()
	c.collectStoredOK()
	c.inspectOwn(func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				c.checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			c.checkWrite(n.X)
		case *ast.CallExpr:
			c.checkCopy(n)
		}
	})
}

// inspectOwn walks the pass body skipping nested function literals (they are
// separate functions with their own CFG; a nested pass body is checked on
// its own).
func (c *passBodyCheck) inspectOwn(f func(ast.Node)) {
	ast.Inspect(c.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}

// collectBlessings finds the canonical shard-range loops.
func (c *passBodyCheck) collectBlessings() {
	c.inspectOwn(func(n ast.Node) {
		f, ok := n.(*ast.ForStmt)
		if !ok {
			return
		}
		init, ok := f.Init.(*ast.AssignStmt)
		if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
			return
		}
		loopID, ok := init.Lhs[0].(*ast.Ident)
		if !ok {
			return
		}
		loopVar, ok := c.pass.TypesInfo.Defs[loopID].(*types.Var)
		if !ok {
			return
		}
		cond, ok := f.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.LSS {
			return
		}
		condX, ok := cond.X.(*ast.Ident)
		if !ok || c.useOf(condX) != loopVar {
			return
		}
		post, ok := f.Post.(*ast.IncDecStmt)
		if !ok || post.Tok != token.INC {
			return
		}
		postX, ok := post.X.(*ast.Ident)
		if !ok || c.useOf(postX) != loopVar {
			return
		}
		sites := map[ast.Node]bool{init: true, post: true}

		// Form A: for i := lo; i < hi; i++ — node range.
		if lo, ok := init.Rhs[0].(*ast.Ident); ok && c.useOf(lo) == c.loObj {
			if hi, ok := cond.Y.(*ast.Ident); ok && c.useOf(hi) == c.hiObj {
				c.blessed[loopVar] = &blessing{kind: provNode, sites: sites}
				return
			}
		}
		// Form B: for a := P[i]; a < P[i+1]; a++ — arc range of row i.
		lowIdx, ok := init.Rhs[0].(*ast.IndexExpr)
		if !ok {
			return
		}
		highIdx, ok := cond.Y.(*ast.IndexExpr)
		if !ok || types.ExprString(lowIdx.X) != types.ExprString(highIdx.X) {
			return
		}
		rowID, ok := lowIdx.Index.(*ast.Ident)
		if !ok || !c.nodeRangeUse(rowID) {
			return
		}
		plus, ok := highIdx.Index.(*ast.BinaryExpr)
		if !ok || plus.Op != token.ADD {
			return
		}
		rowID2, ok := plus.X.(*ast.Ident)
		if !ok || c.useOf(rowID2) != c.useOf(rowID) {
			return
		}
		if lit, ok := plus.Y.(*ast.BasicLit); !ok || lit.Value != "1" {
			return
		}
		c.blessed[loopVar] = &blessing{kind: provArc, sites: sites}
	})
}

func (c *passBodyCheck) useOf(id *ast.Ident) *types.Var {
	v, _ := c.pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

// nodeRangeUse reports whether this identifier use is provably a node-range
// index: lo itself, or a node-blessed loop variable whose reaching defs are
// exactly the blessed loop's init/post.
func (c *passBodyCheck) nodeRangeUse(id *ast.Ident) bool {
	v := c.useOf(id)
	if v == nil {
		return false
	}
	if v == c.loObj {
		return true
	}
	bl := c.blessed[v]
	if bl == nil || bl.kind != provNode {
		return false
	}
	return c.defsWithin(id, bl.sites)
}

// defsWithin reports whether every reaching definition of the use lies in
// sites (and there is at least one).
func (c *passBodyCheck) defsWithin(id *ast.Ident, sites map[ast.Node]bool) bool {
	defs := c.reach.DefsOf(id)
	if len(defs) == 0 {
		return false
	}
	for _, d := range defs {
		if !sites[d.Site] {
			return false
		}
	}
	return true
}

// collectStoredOK computes the index-store taint of local/scratch slices:
// a slice qualifies when every element store into it writes a provably
// in-range index value.
func (c *passBodyCheck) collectStoredOK() {
	stores := map[*types.Var][]ast.Expr{}
	disqualified := map[*types.Var]bool{}
	c.inspectOwn(func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return
		}
		for i, lhs := range as.Lhs {
			ix, ok := lhs.(*ast.IndexExpr)
			if !ok {
				continue
			}
			baseID, ok := ix.X.(*ast.Ident)
			if !ok {
				continue
			}
			v := c.useOf(baseID)
			if v == nil {
				continue
			}
			switch c.classify(ix.X, 0) {
			case classLocal, classScratch:
				stores[v] = append(stores[v], as.Rhs[i])
			default:
				disqualified[v] = true
			}
		}
	})
	for v, rhss := range stores {
		if disqualified[v] {
			continue
		}
		ok := true
		for _, rhs := range rhss {
			id, isID := rhs.(*ast.Ident)
			if !isID || !c.blessedIdentUse(id) {
				ok = false
				break
			}
		}
		c.storedOK[v] = ok
	}
}

// blessedIdentUse reports whether an identifier use is a provably in-range
// index by itself: s, lo, or a blessed loop variable with untampered defs.
func (c *passBodyCheck) blessedIdentUse(id *ast.Ident) bool {
	v := c.useOf(id)
	if v == nil {
		return false
	}
	if v == c.sObj || v == c.loObj {
		return true
	}
	if bl := c.blessed[v]; bl != nil {
		return c.defsWithin(id, bl.sites)
	}
	return false
}

// indexOK reports whether idx is provably inside the shard's own range.
func (c *passBodyCheck) indexOK(idx ast.Expr) bool {
	switch e := idx.(type) {
	case *ast.Ident:
		if c.blessedIdentUse(e) {
			return true
		}
		// A local whose every definition reads out of an in-range index
		// store (a := arcIdx[k]).
		defs := c.reach.DefsOf(e)
		if len(defs) == 0 {
			return false
		}
		for _, d := range defs {
			as, ok := d.Site.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return false
			}
			found := false
			for i, lhs := range as.Lhs {
				if lid, ok := lhs.(*ast.Ident); ok && c.pass.TypesInfo.Defs[lid] == d.Obj || ok && c.useOf(lid) == d.Obj {
					if c.indexReadOK(as.Rhs[i]) {
						found = true
					}
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	case *ast.IndexExpr:
		return c.indexReadOK(e)
	}
	return false
}

// indexReadOK reports whether e is a read that yields an in-range index: an
// element of a storedOK slice, or a blessed identifier.
func (c *passBodyCheck) indexReadOK(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return c.blessedIdentUse(e)
	case *ast.IndexExpr:
		baseID, ok := e.X.(*ast.Ident)
		if !ok {
			return false
		}
		v := c.useOf(baseID)
		return v != nil && c.storedOK[v]
	}
	return false
}

// classify resolves the sharing class of a slice/struct base expression.
func (c *passBodyCheck) classify(e ast.Expr, depth int) sliceClass {
	if depth > 12 {
		return classShared
	}
	switch e := e.(type) {
	case *ast.Ident:
		v := c.useOf(e)
		if v == nil || !c.reach.Tracked(v) {
			// Captured from the enclosing function or global: shared.
			return classShared
		}
		defs := c.reach.DefsOf(e)
		if len(defs) == 0 {
			return classShared
		}
		cls := sliceClass(-1)
		for _, d := range defs {
			dc := c.classifyDef(d, depth)
			if cls == sliceClass(-1) {
				cls = dc
			} else if cls != dc {
				return classShared
			}
		}
		return cls
	case *ast.SelectorExpr:
		if sel := c.pass.TypesInfo.Selections[e]; sel != nil {
			if v, ok := sel.Obj().(*types.Var); ok && c.dblBuf[v] {
				return classDoubleBuf
			}
		}
		return c.classify(e.X, depth+1)
	case *ast.IndexExpr:
		if id, ok := e.Index.(*ast.Ident); ok && c.useOf(id) == c.sObj && c.sObj != nil {
			return classScratch
		}
		return c.classify(e.X, depth+1)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return c.classify(e.X, depth+1)
		}
	case *ast.StarExpr:
		return c.classify(e.X, depth+1)
	case *ast.SliceExpr:
		return c.classify(e.X, depth+1)
	case *ast.ParenExpr:
		return c.classify(e.X, depth+1)
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok {
			switch id.Name {
			case "make", "new":
				if c.pass.TypesInfo.Uses[id] == nil || c.pass.TypesInfo.Uses[id].Parent() == types.Universe {
					return classLocal
				}
			case "append":
				if len(e.Args) > 0 {
					return c.classify(e.Args[0], depth+1)
				}
			}
		}
		return classShared
	case *ast.CompositeLit:
		return classLocal
	}
	return classShared
}

// classifyDef resolves the class a single definition gives its variable.
func (c *passBodyCheck) classifyDef(d driver.Def, depth int) sliceClass {
	if d.Entry {
		// Receiver or parameter: state shared across shards.
		return classShared
	}
	switch site := d.Site.(type) {
	case *ast.AssignStmt:
		if len(site.Lhs) == len(site.Rhs) {
			for i, lhs := range site.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := c.pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = c.pass.TypesInfo.Uses[id]
				}
				if obj == types.Object(d.Obj) {
					return c.classify(site.Rhs[i], depth+1)
				}
			}
		}
		return classShared
	case *ast.ValueSpec:
		if len(site.Values) == 0 {
			// var x []T — nil until locally grown.
			return classLocal
		}
		if len(site.Values) == len(site.Names) {
			for i, name := range site.Names {
				if c.pass.TypesInfo.Defs[name] == types.Object(d.Obj) {
					return c.classify(site.Values[i], depth+1)
				}
			}
		}
	}
	return classShared
}

// checkWrite validates one assignment target inside the pass body.
func (c *passBodyCheck) checkWrite(lhs ast.Expr) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		v := c.useOf(lhs)
		if v != nil && !c.reach.Tracked(v) && !v.IsField() {
			c.pass.Reportf(lhs.Pos(),
				"write to captured variable %q from a pass body: every shard's worker races on it; use a per-shard slot indexed by s and reduce after the join",
				lhs.Name)
		}
	case *ast.IndexExpr:
		switch c.classify(lhs.X, 0) {
		case classShared:
			if !c.indexOK(lhs.Index) {
				c.pass.Reportf(lhs.Pos(),
					"write to shared %s is not provably inside this shard's range (index %s): cross-shard writes race under work stealing; index by the shard's node/arc loop, the [s] slot, or route the buffer through a //lbvet:doublebuffer field",
					types.ExprString(lhs.X), types.ExprString(lhs.Index))
			}
		}
	case *ast.SelectorExpr:
		switch c.classify(lhs, 0) {
		case classShared:
			c.pass.Reportf(lhs.Pos(),
				"write to shared field %s from a pass body: all shards race on it; accumulate into per-shard scratch and reduce after the join",
				types.ExprString(lhs))
		}
	case *ast.StarExpr:
		if c.classify(lhs.X, 0) == classShared {
			c.pass.Reportf(lhs.Pos(),
				"write through shared pointer %s from a pass body races across shards",
				types.ExprString(lhs.X))
		}
	}
}

// checkCopy validates builtin copy calls: copying into a shared slice is
// only allowed through an explicit [lo:hi] window.
func (c *passBodyCheck) checkCopy(call *ast.CallExpr) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "copy" || len(call.Args) != 2 {
		return
	}
	if obj := c.pass.TypesInfo.Uses[id]; obj == nil || obj.Parent() != types.Universe {
		return
	}
	dst := call.Args[0]
	if se, ok := dst.(*ast.SliceExpr); ok {
		lo, okLo := se.Low.(*ast.Ident)
		hi, okHi := se.High.(*ast.Ident)
		if okLo && okHi && c.useOf(lo) == c.loObj && c.useOf(hi) == c.hiObj {
			return
		}
		dst = se.X
	}
	if c.classify(dst, 0) == classShared {
		c.pass.Reportf(call.Pos(),
			"copy into shared %s from a pass body has no provable shard bound; copy into dst[lo:hi]",
			types.ExprString(call.Args[0]))
	}
}

// checkLoopVarEscape flags loop variables captured by goroutine literals:
// the goroutine reads iteration state asynchronously, so the handoff must be
// explicit arguments, not captures.
func checkLoopVarEscape(pass *driver.Pass, body ast.Node) {
	var walk func(n ast.Node, active map[*types.Var]bool)
	walk = func(n ast.Node, active map[*types.Var]bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				inner := withLoopVars(pass, active, forLoopVars(pass, n))
				if n.Init != nil {
					walk(n.Init, active)
				}
				for _, part := range []ast.Node{n.Cond, n.Post, n.Body} {
					if part != nil {
						walk(part, inner)
					}
				}
				return false
			case *ast.RangeStmt:
				inner := withLoopVars(pass, active, rangeLoopVars(pass, n))
				walk(n.X, active)
				walk(n.Body, inner)
				return false
			case *ast.GoStmt:
				if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
					reportCaptured(pass, fl, active)
				}
				for _, arg := range n.Call.Args {
					walk(arg, active)
				}
				return false
			}
			return true
		})
	}
	walk(body, map[*types.Var]bool{})
}

func forLoopVars(pass *driver.Pass, f *ast.ForStmt) []*types.Var {
	init, ok := f.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE {
		return nil
	}
	var vars []*types.Var
	for _, lhs := range init.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
				vars = append(vars, v)
			}
		}
	}
	return vars
}

func rangeLoopVars(pass *driver.Pass, r *ast.RangeStmt) []*types.Var {
	if r.Tok != token.DEFINE {
		return nil
	}
	var vars []*types.Var
	for _, e := range []ast.Expr{r.Key, r.Value} {
		if id, ok := e.(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
				vars = append(vars, v)
			}
		}
	}
	return vars
}

func withLoopVars(pass *driver.Pass, active map[*types.Var]bool, vars []*types.Var) map[*types.Var]bool {
	if len(vars) == 0 {
		return active
	}
	inner := make(map[*types.Var]bool, len(active)+len(vars))
	for v := range active {
		inner[v] = true
	}
	for _, v := range vars {
		inner[v] = true
	}
	return inner
}

func reportCaptured(pass *driver.Pass, fl *ast.FuncLit, active map[*types.Var]bool) {
	if len(active) == 0 {
		return
	}
	seen := map[*types.Var]bool{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if ok && active[v] && !seen[v] {
			seen[v] = true
			pass.Reportf(id.Pos(),
				"loop variable %q captured by a goroutine launched in the loop: the spawn reads iteration state asynchronously; pass it as an argument so the handoff is explicit",
				id.Name)
		}
		return true
	})
}
