package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"diffusionlb/internal/analysis/driver"
)

// HotAlloc enforces the 0 allocs/round contract on functions annotated
// //lbvet:hotpath — the fused Step kernels, Reweight/ReweightPar, Retarget
// and the rounders. TestStepSteadyStateAllocFree pins the property at
// runtime for one engine configuration; this analyzer pins the cause for
// every annotated function, flagging each construct that allocates (or
// forces a heap escape) on the hot path:
//
//   - append (may grow the backing array) and make/new;
//   - function literals (closure allocation);
//   - fmt calls (interface formatting allocates);
//   - slice, map and address-taken composite literals;
//   - map iteration (hash-order dependent and cache-hostile);
//   - implicit conversion of non-pointer-shaped values to interface types
//     (boxing).
//
// Error paths are exempt: an allocation in a block from which every path
// terminates in a failure return (a result built by fmt.Errorf/errors.New,
// an err guarded by err != nil, or a panic) runs at most once per
// misconfiguration, not once per round. The exemption is computed on the
// function's CFG, so validation prologues keep their informative errors.
var HotAlloc = &driver.Analyzer{
	Name: "hotalloc",
	Doc: "//lbvet:hotpath functions must be allocation-free: no append/make, " +
		"closures, fmt, map iteration, escaping literals or interface boxing " +
		"outside error-terminating paths",
	Run: runHotAlloc,
}

func runHotAlloc(pass *driver.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !driver.HasDirective(fd.Doc, "hotpath") {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

func checkHotFunc(pass *driver.Pass, fd *ast.FuncDecl) {
	cfg := pass.FuncCFG(fd)
	cold := coldBlocks(pass, cfg)
	for _, blk := range cfg.Blocks {
		if cold[blk.Index] {
			continue
		}
		for _, node := range blk.Nodes {
			checkHotNode(pass, fd, node)
		}
	}
}

// coldBlocks marks blocks from which every path terminates in a failure
// exit (error return or panic): allocations there are per-misconfiguration,
// not per-round. A block is hot when it can reach a normal exit.
func coldBlocks(pass *driver.Pass, cfg *driver.CFG) []bool {
	normal := make([]bool, len(cfg.Blocks))
	for _, blk := range cfg.Blocks {
		if blk.FallsToExit {
			normal[blk.Index] = true
		}
		for _, ret := range blk.Returns {
			if !isFailureReturn(pass, cfg, ret) {
				normal[blk.Index] = true
			}
		}
	}
	// Backward propagation: a block reaching a normal-exit block is hot.
	hot := make([]bool, len(cfg.Blocks))
	preds := make([][]*driver.Block, len(cfg.Blocks))
	var work []*driver.Block
	for _, blk := range cfg.Blocks {
		for _, s := range blk.Succs {
			preds[s.Index] = append(preds[s.Index], blk)
		}
		if normal[blk.Index] {
			hot[blk.Index] = true
			work = append(work, blk)
		}
	}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		for _, p := range preds[blk.Index] {
			if !hot[p.Index] {
				hot[p.Index] = true
				work = append(work, p)
			}
		}
	}
	cold := make([]bool, len(cfg.Blocks))
	for i := range cold {
		cold[i] = !hot[i]
	}
	return cold
}

// isFailureReturn classifies a return as an error exit: a result that
// constructs an error (fmt.Errorf, errors.New, a function named Err*), or a
// bare error identifier returned under its own err != nil guard.
func isFailureReturn(pass *driver.Pass, cfg *driver.CFG, ret *ast.ReturnStmt) bool {
	for _, res := range ret.Results {
		if isErrorConstruction(pass, res) {
			return true
		}
		if id, ok := res.(*ast.Ident); ok && isErrorTypedExpr(pass, id) && guardedNonNil(pass, cfg.Fn, ret, id) {
			return true
		}
	}
	return false
}

func isErrorConstruction(pass *driver.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeOf(pass, call)
	if fn == nil {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "errors" || pkg.Path() == "fmt" && fn.Name() == "Errorf") {
		return true
	}
	return strings.HasPrefix(fn.Name(), "Err")
}

func isErrorTypedExpr(pass *driver.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	return t.String() == "error"
}

// guardedNonNil reports whether ret sits inside an if whose condition
// compares id's variable against nil with != — the canonical
// `if err != nil { return err }` shape.
func guardedNonNil(pass *driver.Pass, fn ast.Node, ret *ast.ReturnStmt, id *ast.Ident) bool {
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || found {
			return !found
		}
		cond, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		condID, okX := cond.X.(*ast.Ident)
		if !okX || pass.TypesInfo.Uses[condID] != types.Object(v) {
			return true
		}
		if nilID, okY := cond.Y.(*ast.Ident); !okY || nilID.Name != "nil" {
			return true
		}
		if ret.Pos() >= ifs.Body.Pos() && ret.End() <= ifs.Body.End() {
			found = true
		}
		return true
	})
	return found
}

// checkHotNode flags the allocating constructs inside one CFG node,
// without descending into nested function literals (flagged as a whole).
func checkHotNode(pass *driver.Pass, fd *ast.FuncDecl, node ast.Node) {
	// A RangeStmt appears in the CFG as a loop-head node standing for the
	// per-iteration assignment and range-expression evaluation; its body is
	// its own set of blocks, so only X is inspected here.
	if rs, ok := node.(*ast.RangeStmt); ok {
		if t := pass.TypesInfo.TypeOf(rs.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				pass.Reportf(rs.Pos(),
					"map iteration in //lbvet:hotpath %s is hash-order dependent and cache-hostile; keep hot state in indexed slices", fd.Name.Name)
			}
		}
		node = rs.X
	}
	flaggedFmt := map[*ast.CallExpr]bool{}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(),
				"closure literal in //lbvet:hotpath %s allocates per call; hoist it to a method value bound at construction", fd.Name.Name)
			return false
		case *ast.CompositeLit:
			checkCompositeLit(pass, fd, n)
		case *ast.CallExpr:
			checkHotCall(pass, fd, n, flaggedFmt)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) {
					checkBoxing(pass, fd, rhs, pass.TypesInfo.TypeOf(n.Lhs[i]))
				}
			}
		case *ast.ReturnStmt:
			sig, ok := fnSignature(pass, fd)
			if !ok || sig.Results().Len() != len(n.Results) {
				return true
			}
			for i, res := range n.Results {
				checkBoxing(pass, fd, res, sig.Results().At(i).Type())
			}
		}
		return true
	})
}

func fnSignature(pass *driver.Pass, fd *ast.FuncDecl) (*types.Signature, bool) {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil, false
	}
	sig, ok := obj.Type().(*types.Signature)
	return sig, ok
}

func checkCompositeLit(pass *driver.Pass, fd *ast.FuncDecl, lit *ast.CompositeLit) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		pass.Reportf(lit.Pos(),
			"%s literal in //lbvet:hotpath %s allocates; preallocate at construction", kindName(t), fd.Name.Name)
	}
}

func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}

func checkHotCall(pass *driver.Pass, fd *ast.FuncDecl, call *ast.CallExpr, flaggedFmt map[*ast.CallExpr]bool) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if obj := pass.TypesInfo.Uses[id]; obj != nil && obj.Parent() == types.Universe {
			switch id.Name {
			case "append":
				pass.Reportf(call.Pos(),
					"append in //lbvet:hotpath %s may grow the backing array (allocates); size the buffer at construction and index it", fd.Name.Name)
			case "make", "new":
				pass.Reportf(call.Pos(),
					"%s in //lbvet:hotpath %s allocates per call; allocate at construction and reuse", id.Name, fd.Name.Name)
			}
			return
		}
	}
	fn := calleeOf(pass, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		flaggedFmt[call] = true
		pass.Reportf(call.Pos(),
			"fmt.%s in //lbvet:hotpath %s formats through interfaces (allocates); hot paths must not format", fn.Name(), fd.Name.Name)
		return
	}
	// Interface boxing at call arguments.
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok || flaggedFmt[call] {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		checkBoxing(pass, fd, arg, pt)
	}
}

// checkBoxing flags an implicit conversion of a non-pointer-shaped value to
// an interface type: the runtime must heap-box the value to form the
// interface word.
func checkBoxing(pass *driver.Pass, fd *ast.FuncDecl, e ast.Expr, target types.Type) {
	if target == nil {
		return
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	at := pass.TypesInfo.TypeOf(e)
	if at == nil || at == types.Typ[types.UntypedNil] {
		return
	}
	if _, isIface := at.Underlying().(*types.Interface); isIface {
		return
	}
	switch at.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Signature, *types.Map:
		// Pointer-shaped: the interface data word holds the value directly.
		return
	}
	pass.Reportf(e.Pos(),
		"%s value boxed into interface %s in //lbvet:hotpath %s (allocates); keep hot calls monomorphic",
		at.String(), target.String(), fd.Name.Name)
}

// calleeOf resolves a call to its static *types.Func (nil for indirect or
// builtin calls). Shared with nodeterminism's calleeFunc but kept local so
// each analyzer file reads standalone.
func calleeOf(pass *driver.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		f, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}
