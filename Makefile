GO ?= go

.PHONY: all build test test-short race-sweep fmt-check vet verify bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The sweep engine is the only package that fans out goroutines across
# scenario cells; run it under the race detector explicitly.
race-sweep:
	$(GO) test -race -short ./internal/sweep/... ./internal/experiments/

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# verify is the CI entry point: formatting, static checks, a full build
# (including the examples/ packages, which have no tests of their own) and
# the short test suite plus the race pass on the concurrent packages.
verify: fmt-check vet build test-short race-sweep
	@echo verify OK

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

clean:
	$(GO) clean ./...
