GO ?= go

.PHONY: all build test test-short lint lint-canary verify-static race fmt-check vet verify fuzz-smoke bench bench-smoke bench-scale clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# lint runs the lbvet analyzer suite (internal/analysis): nodeterminism,
# floateq, specroundtrip, goroutineleak, shardsafety, hotalloc,
# checkpointsync and telemetryread — the static half of the determinism and
# conservation contract (see README "Determinism contract"). Exceptions
# need a justified //lint:allow.
lint:
	$(GO) run ./cmd/lbvet ./...

# lint-canary proves the suite still catches the defect classes it exists
# for: it plants a cross-shard write and a hot-path allocation in a scratch
# copy of the module and requires lint to flag both (see
# TestSeededDefectCanary).
lint-canary:
	$(GO) test -run '^TestSeededDefectCanary$$' ./internal/analysis

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# verify-static is the no-execution half of verify: formatting, go vet and
# the lbvet analyzer suite.
verify-static: fmt-check vet lint

# race runs every package under the race detector with the runtime
# invariant checks compiled in (-tags=invariants): the sweep engine fans
# out goroutines across scenario cells, the engines run shard.Run workers
# inside a step, and the invariants assert conservation and
# column-stochasticity after every round while they race.
race:
	$(GO) test -race -short -tags=invariants ./...

# verify is the CI entry point: the static suite, a full build (including
# the examples/ packages, which have no tests of their own), the short test
# suite and the race+invariants pass.
verify: verify-static build test-short race
	@echo verify OK

# fuzz-smoke runs every fuzz target briefly (override FUZZTIME, e.g.
# FUZZTIME=60s) — the executable proof behind the specroundtrip analyzer's
# requirement that every FromSpec parser has a fuzz round-trip test.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzFromSpec$$' -fuzztime $(FUZZTIME) ./internal/graph
	$(GO) test -run '^$$' -fuzz '^FuzzSpeedsFromSpec$$' -fuzztime $(FUZZTIME) ./internal/hetero
	$(GO) test -run '^$$' -fuzz '^FuzzPolicyFromSpec$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzFromSpec$$' -fuzztime $(FUZZTIME) ./internal/workload
	$(GO) test -run '^$$' -fuzz '^FuzzFromSpec$$' -fuzztime $(FUZZTIME) ./internal/envdyn
	$(GO) test -run '^$$' -fuzz '^FuzzFromSpec$$' -fuzztime $(FUZZTIME) ./internal/scenario
	$(GO) test -run '^$$' -fuzz '^FuzzFromSpec$$' -fuzztime $(FUZZTIME) ./internal/actor

# bench produces real timings; override BENCHTIME (e.g. BENCHTIME=2s) or
# narrow with standard go test flags for serious measurement runs.
BENCHTIME ?= 1s
bench:
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) ./...

# bench-smoke runs every benchmark exactly once — including the
# dynamic-workload and engine benchmarks — so the perf paths at least
# compile and execute on every CI run without the timing cost of `bench`.
# The scale benchmarks run shrunk to 16384 nodes (they default to 2^20).
bench-smoke:
	DIFFUSIONLB_SCALE_N=16384 $(GO) test -run '^$$' -bench . -benchtime 1x . ./internal/...

# bench-scale measures the step path at paper scale (override BENCH_N,
# e.g. BENCH_N=4194304) and writes BENCH_10.json: node-updates/sec,
# bytes/node and allocs/round for FOS and SOS on a 2-d torus and a
# random-regular graph — on the shared-memory engine, the barrier actor
# runtime and the stale=2 actor runtime, each cell the median of 3 repeats
# with telemetry-off/on twin rows. See README "Memory layout & scale".
BENCH_N ?= 1048576
BENCH_OUT ?= BENCH_10.json
bench-scale:
	$(GO) run ./cmd/lbbench -n $(BENCH_N) -compare-telemetry -out $(BENCH_OUT)

clean:
	$(GO) clean ./...
