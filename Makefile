GO ?= go

.PHONY: all build test test-short race-sweep fmt-check vet verify bench bench-smoke clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The sweep engine fans out goroutines across scenario cells, the
# workload/sim/envdyn/scenario layers feed per-cell mutators, speed
# dynamics and coupled events into those goroutines, and the core engines
# run parallelFor chunks inside a step (Workers>1); run them all under the
# race detector explicitly.
race-sweep:
	$(GO) test -race -short ./internal/sweep/... ./internal/experiments/ ./internal/workload/ ./internal/envdyn/ ./internal/scenario/ ./internal/sim/ ./internal/core/

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# verify is the CI entry point: formatting, static checks, a full build
# (including the examples/ packages, which have no tests of their own) and
# the short test suite plus the race pass on the concurrent packages.
verify: fmt-check vet build test-short race-sweep
	@echo verify OK

# bench produces real timings; override BENCHTIME (e.g. BENCHTIME=2s) or
# narrow with standard go test flags for serious measurement runs.
BENCHTIME ?= 1s
bench:
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) ./...

# bench-smoke runs every benchmark exactly once — including the
# dynamic-workload and engine benchmarks — so the perf paths at least
# compile and execute on every CI run without the timing cost of `bench`.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x . ./internal/...

clean:
	$(GO) clean ./...
